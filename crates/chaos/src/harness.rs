//! The chaos harness: seeded fault-injection runs over real workloads with
//! invariant checking after every wave.
//!
//! A run is a sequence of *waves*: every `(node, worker)` pair drives a
//! session through a fixed number of generated transactions, then the
//! cluster is quiesced (held-back messages flushed, switch drained) and the
//! invariants are checked. Between waves the harness can crash and recover a
//! database node, and crash the switch and recover it from the WALs —
//! optionally re-offloading the hot set into fresh register slots.
//!
//! Everything derives from `ChaosOptions::seed`: the workload streams, the
//! fault decision stream and the re-offload shuffle, so a failing seed is
//! re-run with one command. When violations are found and the plan mixes
//! several fault classes, the harness re-runs the seed with one class at a
//! time to report the minimal set that still reproduces the failure.

use crate::invariants::{self, InvariantReport, SemanticChecks};
use p4db_common::faults::{BlackholeFault, FaultEvent, FaultPlan};
use p4db_common::rand_util::FastRng;
use p4db_common::{Error, NodeId, Result, SystemMode, TxnId};
use p4db_core::{BreakerConfig, Cluster, NodeRecoveryReport, ResolverReport, SupervisorReport, SwitchRecoveryReport};
use p4db_net::{EndpointId, RecvOutcome};
use p4db_storage::{LogRecord, WalCodec};
use p4db_switch::{Instruction, SwitchMessage, SwitchTxn, TxnHeader};
use p4db_txn::{OpKind, TxnOp};
use p4db_workloads::{SmallBank, SmallBankConfig, Tpcc, TpccConfig, Workload, WorkloadCtx, Ycsb, YcsbConfig, YcsbMix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which workload a chaos run drives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChaosWorkload {
    Ycsb,
    SmallBank,
    Tpcc,
}

impl ChaosWorkload {
    pub fn name(self) -> &'static str {
        match self {
            ChaosWorkload::Ycsb => "ycsb",
            ChaosWorkload::SmallBank => "smallbank",
            ChaosWorkload::Tpcc => "tpcc",
        }
    }

    /// Parses the `CHAOS_WORKLOAD` environment value.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "ycsb" => Some(ChaosWorkload::Ycsb),
            "smallbank" => Some(ChaosWorkload::SmallBank),
            "tpcc" => Some(ChaosWorkload::Tpcc),
            _ => None,
        }
    }
}

/// One chaos scenario, fully determined by its fields.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    pub workload: ChaosWorkload,
    /// Master seed: workload streams, fault stream and re-offload shuffle
    /// all derive from it.
    pub seed: u64,
    pub mode: SystemMode,
    pub nodes: u16,
    pub workers: u16,
    /// Switches in the topology (`ClusterBuilder::switches`). With more
    /// than one, the hot set is partitioned across switches and
    /// `crash_switch` crashes and recovers **each switch independently**
    /// (its own WAL-suffix replay, epoch and — with `reoffload` — its own
    /// seeded reshuffle).
    pub switches: u16,
    /// Traffic waves; crashes (if any) happen after the first wave.
    pub waves: usize,
    /// Transactions per driver per wave.
    pub txns_per_wave: usize,
    pub distributed_prob: f64,
    /// Message faults; `None` runs the faults-off control arm (still with
    /// audit log + invariant checking).
    pub faults: Option<FaultPlan>,
    /// Crash + WAL-recover this node between waves. Crash scenarios should
    /// run with `distributed_prob == 0.0` so cross-coordinator write
    /// ordering cannot make recovery ambiguous.
    pub crash_node: Option<NodeId>,
    /// Crash the switch between waves and recover it from the WALs.
    pub crash_switch: bool,
    /// With `crash_switch`: re-offload the hot set into fresh register slots
    /// and swap the replicated index, instead of restoring in place.
    pub reoffload: bool,
    /// Retry budget per transaction (aborts only; in-doubt is never retried).
    pub max_attempts: u32,
    /// Hot-path batching degree (`ClusterConfig::batch_size`): the switch
    /// dequeues/replies in frames of up to this many packets and the
    /// executors pipeline queued all-hot transactions. `1` = unbatched.
    pub batch: u16,
    /// Runs the pre-sharding node hot path (`ClusterConfig::single_latch`):
    /// single-shard storage plus the seed's per-op lock/lookup/release
    /// engine. The known-good baseline arm of the sharding differential
    /// suite in `tests/sharding.rs`.
    pub single_latch: bool,
    /// Round-trips the WALs through the line-oriented text codec instead of
    /// the segmented binary default (`ClusterConfig::wal_codec`). The
    /// differential suite in `tests/durability.rs` proves the two arms
    /// verdict-equivalent.
    pub text_wal: bool,
    /// Fuzzy-checkpoint cadence (`ClusterConfig::checkpoint_interval`). When
    /// set, a checkpointer thread races every traffic wave, checkpointing
    /// any node whose WAL grew by this many records — the scans are
    /// genuinely fuzzy, racing live writers — and the invariant checker
    /// verifies checkpoint+tail reconstruction against the live tables.
    pub checkpoint_interval: Option<u64>,
    /// With `crash_node`: simulate a crash landing *mid-checkpoint-write* —
    /// a complete generation is taken, then a newer one torn mid-blob before
    /// recovery runs. Recovery must skip the torn generation and start from
    /// the complete one; [`ChaosReport::is_clean`] enforces it.
    pub torn_checkpoint: bool,
    /// Fraction of generated transactions converted to all-reads over the
    /// same tuples and homes (the read-mostly traffic of the MVCC
    /// differential suite). The conversion decision consumes exactly one
    /// rng draw per transaction in *both* arms, so a snapshot-arm run and a
    /// 2PL-arm run with the same seed drive identical schedules; `0.0`
    /// skips the draw entirely and keeps legacy scenarios byte-identical.
    pub read_only_frac: f64,
    /// Marks the converted all-read transactions `read_only`, steering them
    /// onto the lock-free snapshot path. `false` runs the same schedule
    /// through ordinary 2PL — the differential baseline arm.
    pub snapshot_arm: bool,
    /// Runs every wave under the self-healing supervisor: the circuit
    /// breaker is enabled, the supervisor loop detects trips, stands up
    /// degraded mode, probes, resolves in-doubt transactions and re-admits —
    /// no manual recovery calls. (The blackhole fault itself rides in
    /// [`ChaosOptions::faults`] via [`FaultPlan::blackhole`].) Not combined
    /// with `checkpoint_interval` — the supervisor owns the harness thread
    /// the checkpointer would use.
    pub supervised: bool,
}

impl ChaosOptions {
    /// A standard faulty scenario: 2×2 cluster, two waves, seeded faults.
    pub fn new(workload: ChaosWorkload, seed: u64) -> Self {
        ChaosOptions {
            workload,
            seed,
            mode: SystemMode::P4db,
            nodes: 2,
            workers: 2,
            switches: 1,
            waves: 2,
            txns_per_wave: 120,
            distributed_prob: 0.2,
            faults: Some(FaultPlan::seeded(seed)),
            crash_node: None,
            crash_switch: false,
            reoffload: false,
            max_attempts: 30,
            batch: 16,
            single_latch: false,
            text_wal: false,
            checkpoint_interval: None,
            torn_checkpoint: false,
            read_only_frac: 0.0,
            snapshot_arm: false,
            supervised: false,
        }
    }

    /// The faults-off control arm of the same scenario.
    pub fn faults_off(mut self) -> Self {
        self.faults = None;
        self
    }

    /// The `VAR=value` environment prefix that makes
    /// [`ChaosOptions::from_env`] rebuild this exact scenario. Only
    /// non-default knobs are emitted.
    pub fn repro_env(&self) -> String {
        let defaults = ChaosOptions::new(self.workload, self.seed);
        let mut env = format!("CHAOS_WORKLOAD={} CHAOS_SEED={}", self.workload.name(), self.seed);
        match &self.faults {
            None => env.push_str(" CHAOS_FAULTS=off"),
            // A plan with no probabilistic message faults (quiet net, e.g. a
            // blackhole-only scenario) must not round-trip into the seeded
            // default's drop/delay/reorder mix.
            Some(plan) if plan.net.drop_prob == 0.0 && plan.net.delay_prob == 0.0 && plan.net.reorder_prob == 0.0 => {
                env.push_str(" CHAOS_FAULTS=quiet");
            }
            Some(_) => {}
        }
        if self.mode != defaults.mode {
            let mode = match self.mode {
                SystemMode::P4db => "p4db",
                SystemMode::LmSwitch => "lmswitch",
                SystemMode::NoSwitch => "noswitch",
            };
            env.push_str(&format!(" CHAOS_MODE={mode}"));
        }
        if self.distributed_prob != defaults.distributed_prob {
            env.push_str(&format!(" CHAOS_DIST={}", self.distributed_prob));
        }
        if let Some(node) = self.crash_node {
            env.push_str(&format!(" CHAOS_CRASH_NODE={}", node.0));
        }
        if self.crash_switch {
            env.push_str(" CHAOS_CRASH_SWITCH=1");
        }
        if self.reoffload {
            env.push_str(" CHAOS_REOFFLOAD=1");
        }
        if self.single_latch {
            env.push_str(" CHAOS_SINGLE_LATCH=1");
        }
        if self.text_wal {
            env.push_str(" CHAOS_TEXT_WAL=1");
        }
        if let Some(interval) = self.checkpoint_interval {
            env.push_str(&format!(" CHAOS_CKPT={interval}"));
        }
        if self.torn_checkpoint {
            env.push_str(" CHAOS_TORN_CKPT=1");
        }
        if self.read_only_frac != defaults.read_only_frac {
            env.push_str(&format!(" CHAOS_RO_FRAC={}", self.read_only_frac));
        }
        if self.snapshot_arm {
            env.push_str(" CHAOS_SNAPSHOT=1");
        }
        if self.supervised {
            env.push_str(" CHAOS_SUPERVISED=1");
        }
        if let Some(bh) = self.faults.as_ref().and_then(|p| p.blackhole) {
            env.push_str(&format!(
                " CHAOS_BLACKHOLE={} CHAOS_BH_AFTER={} CHAOS_BH_HEAL={}",
                bh.switch, bh.after_messages, bh.heal_after_drops
            ));
        }
        for (var, actual, default) in [
            ("CHAOS_NODES", self.nodes as u64, defaults.nodes as u64),
            ("CHAOS_WORKERS", self.workers as u64, defaults.workers as u64),
            ("CHAOS_SWITCHES", self.switches as u64, defaults.switches as u64),
            ("CHAOS_WAVES", self.waves as u64, defaults.waves as u64),
            ("CHAOS_TXNS", self.txns_per_wave as u64, defaults.txns_per_wave as u64),
            ("CHAOS_ATTEMPTS", self.max_attempts as u64, defaults.max_attempts as u64),
            ("CHAOS_BATCH", self.batch as u64, defaults.batch as u64),
        ] {
            if actual != default {
                env.push_str(&format!(" {var}={actual}"));
            }
        }
        env
    }

    /// Rebuilds a scenario from `CHAOS_*` environment variables (the
    /// counterpart of [`ChaosOptions::repro_env`]); unset variables keep the
    /// standard-scenario defaults. Used by the repro test a failing run
    /// points at.
    pub fn from_env() -> Self {
        let var = |name: &str| std::env::var(name).ok();
        let parse = |name: &str| var(name).and_then(|v| v.parse::<u64>().ok());
        let workload = var("CHAOS_WORKLOAD").and_then(|w| ChaosWorkload::parse(&w)).unwrap_or(ChaosWorkload::SmallBank);
        let seed = parse("CHAOS_SEED").unwrap_or(7);
        let mut options = ChaosOptions::new(workload, seed);
        match var("CHAOS_FAULTS").as_deref() {
            Some("off") => options.faults = None,
            Some("quiet") => options.faults = Some(FaultPlan::quiet(seed)),
            _ => {}
        }
        options.mode = match var("CHAOS_MODE").as_deref() {
            Some("lmswitch") => SystemMode::LmSwitch,
            Some("noswitch") => SystemMode::NoSwitch,
            _ => options.mode,
        };
        if let Some(p) = var("CHAOS_DIST").and_then(|v| v.parse::<f64>().ok()) {
            options.distributed_prob = p;
        }
        let flag = |name: &str| matches!(var(name).as_deref(), Some("1") | Some("true"));
        options.crash_node = parse("CHAOS_CRASH_NODE").map(|n| NodeId(n as u16));
        options.crash_switch = flag("CHAOS_CRASH_SWITCH");
        options.reoffload = flag("CHAOS_REOFFLOAD");
        options.single_latch = flag("CHAOS_SINGLE_LATCH");
        options.text_wal = flag("CHAOS_TEXT_WAL");
        options.checkpoint_interval = parse("CHAOS_CKPT").filter(|&n| n > 0);
        options.torn_checkpoint = flag("CHAOS_TORN_CKPT");
        if let Some(f) = var("CHAOS_RO_FRAC").and_then(|v| v.parse::<f64>().ok()) {
            options.read_only_frac = f;
        }
        options.snapshot_arm = flag("CHAOS_SNAPSHOT");
        options.supervised = flag("CHAOS_SUPERVISED");
        if let Some(switch) = parse("CHAOS_BLACKHOLE") {
            let blackhole = BlackholeFault {
                switch: switch as u16,
                after_messages: parse("CHAOS_BH_AFTER").unwrap_or(50),
                heal_after_drops: parse("CHAOS_BH_HEAL").unwrap_or(0),
            };
            options.faults.get_or_insert_with(|| FaultPlan::quiet(seed)).blackhole = Some(blackhole);
        }
        if let Some(n) = parse("CHAOS_NODES") {
            options.nodes = n as u16;
        }
        if let Some(n) = parse("CHAOS_WORKERS") {
            options.workers = n as u16;
        }
        if let Some(n) = parse("CHAOS_SWITCHES") {
            options.switches = n as u16;
        }
        if let Some(n) = parse("CHAOS_WAVES") {
            options.waves = n as usize;
        }
        if let Some(n) = parse("CHAOS_TXNS") {
            options.txns_per_wave = n as usize;
        }
        if let Some(n) = parse("CHAOS_ATTEMPTS") {
            options.max_attempts = n as u32;
        }
        if let Some(n) = parse("CHAOS_BATCH") {
            options.batch = n as u16;
        }
        options
    }
}

/// Everything a chaos run observed.
#[derive(Debug)]
pub struct ChaosReport {
    pub workload: &'static str,
    pub seed: u64,
    pub committed: u64,
    pub aborted: u64,
    /// Transactions that committed in doubt (switch reply lost).
    pub in_doubt: u64,
    /// In-doubt commits noted per `SwitchId` over the run (cumulative: the
    /// resolver settles entries but this counter records where they arose).
    pub in_doubt_per_switch: Vec<u64>,
    /// Committed transactions per wave — the liveness trace: under a
    /// supervised mid-run outage every wave must stay non-zero.
    pub wave_committed: Vec<u64>,
    /// What the self-healing supervisor observed (supervised runs only).
    pub supervisor: Option<SupervisorReport>,
    /// Committed transactions served on the lock-free snapshot read path
    /// (non-zero only with `read_only_frac > 0` and `snapshot_arm`).
    pub snapshot_reads: u64,
    /// Total network faults injected (the trace below is capped, this is
    /// not).
    pub faults_injected: u64,
    pub fault_events: Vec<FaultEvent>,
    pub invariants: InvariantReport,
    pub node_recovery: Option<NodeRecoveryReport>,
    pub switch_recovery: Option<SwitchRecoveryReport>,
    /// Fuzzy checkpoints installed while traffic was live.
    pub checkpoints_taken: usize,
    /// Set by the crash-during-checkpoint drill: the complete generation
    /// recovery must fall back to, the newer one having been torn.
    pub expected_checkpoint: Option<u64>,
    /// Whether every quiesce completed before its timeout.
    pub quiesced: bool,
    /// Fault classes that alone still reproduce the failure (populated only
    /// when the full plan failed and mixes several classes).
    pub minimized_faults: Vec<&'static str>,
    /// One command that reproduces this exact scenario.
    pub repro: String,
}

impl ChaosReport {
    /// No invariant violations, no recovery divergence, clean quiesce — and,
    /// for the crash-during-checkpoint drill, recovery actually fell back to
    /// the expected complete generation instead of using the torn one.
    pub fn is_clean(&self) -> bool {
        self.invariants.is_clean()
            && self.quiesced
            && self
                .node_recovery
                .as_ref()
                .is_none_or(|r| r.divergences.is_empty() && r.ambiguous == 0 && r.codec_error.is_none())
            && self.switch_recovery.as_ref().is_none_or(|r| r.unexplained_divergences.is_empty())
            && self
                .expected_checkpoint
                .is_none_or(|expected| self.node_recovery.as_ref().is_some_and(|r| r.from_checkpoint == Some(expected)))
    }

    /// A one-screen failure summary: seed, violations, minimized fault trace.
    pub fn failure_summary(&self) -> String {
        let mut out = format!(
            "chaos run failed: workload={} seed={} ({} committed, {} in doubt)\nreproduce with: {}\n",
            self.workload, self.seed, self.committed, self.in_doubt, self.repro
        );
        for v in &self.invariants.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        if let Some(r) = &self.node_recovery {
            if !r.divergences.is_empty() {
                out.push_str(&format!("  node recovery divergences: {:?}\n", r.divergences));
            }
            if let Some(expected) = self.expected_checkpoint {
                if r.from_checkpoint != Some(expected) {
                    out.push_str(&format!(
                        "  recovery used checkpoint {:?}, expected fallback to complete generation {expected}\n",
                        r.from_checkpoint
                    ));
                }
            }
        }
        if let Some(r) = &self.switch_recovery {
            if !r.unexplained_divergences.is_empty() {
                out.push_str(&format!("  switch recovery divergences: {:?}\n", r.unexplained_divergences));
            }
        }
        if !self.minimized_faults.is_empty() {
            out.push_str(&format!("  minimized fault classes: {:?}\n", self.minimized_faults));
        }
        let shown = self.fault_events.len().min(12);
        for event in &self.fault_events[..shown] {
            out.push_str(&format!("  fault: {:?} on {}\n", event.kind, event.link));
        }
        if self.faults_injected > shown as u64 {
            out.push_str(&format!("  ... {} more faults\n", self.faults_injected - shown as u64));
        }
        out
    }
}

fn build_workload(options: &ChaosOptions) -> (Arc<dyn Workload>, SemanticChecks) {
    match options.workload {
        ChaosWorkload::Ycsb => {
            let w = Ycsb::new(YcsbConfig { keys_per_node: 2_000, ..YcsbConfig::new(YcsbMix::A) });
            (Arc::new(w), SemanticChecks::None)
        }
        ChaosWorkload::SmallBank => {
            let config = SmallBankConfig { customers_per_node: 2_000, ..SmallBankConfig::default() };
            let checks = SemanticChecks::SmallBank {
                initial_balance: p4db_workloads::smallbank::INITIAL_BALANCE,
                max_amount: config.max_amount,
            };
            (Arc::new(SmallBank::new(config)), checks)
        }
        ChaosWorkload::Tpcc => {
            let config = TpccConfig { items_loaded: 300, ..TpccConfig::new(2) };
            let checks = SemanticChecks::Tpcc { warehouses: config.warehouses, initial_customer_balance: 1_000 };
            (Arc::new(Tpcc::new(config)), checks)
        }
    }
}

/// Runs one chaos scenario end to end and returns the full report. On
/// failure (and a multi-class fault plan) the seed is re-run once per fault
/// class to minimize the reproducing trace.
pub fn run_chaos(options: &ChaosOptions) -> Result<ChaosReport> {
    let mut report = run_once(options)?;
    if !report.is_clean() {
        if let Some(plan) = &options.faults {
            let kinds = plan.active_kinds();
            if kinds.len() > 1 {
                for kind in kinds {
                    let mut narrowed = options.clone();
                    narrowed.faults = Some(plan.only(kind));
                    if let Ok(rerun) = run_once(&narrowed) {
                        if !rerun.is_clean() {
                            report.minimized_faults.push(kind.name());
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

fn run_once(options: &ChaosOptions) -> Result<ChaosReport> {
    let (workload, semantics) = build_workload(options);
    let mut builder = Cluster::builder(Arc::clone(&workload))
        .nodes(options.nodes)
        .workers(options.workers)
        .switches(options.switches)
        .mode(options.mode)
        .distributed_prob(options.distributed_prob)
        .seed(options.seed)
        .batch_size(options.batch)
        .single_latch(options.single_latch)
        .wal_codec(if options.text_wal { WalCodec::Text } else { WalCodec::Binary })
        .test_latencies();
    if let Some(interval) = options.checkpoint_interval {
        builder = builder.checkpoint_interval(interval);
    }
    if let Some(plan) = &options.faults {
        builder = builder.with_faults(plan.clone());
    }
    if options.supervised {
        builder = builder.breaker(BreakerConfig::enabled()).supervisor(true);
    }
    let mut cluster = builder.try_build()?;

    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut in_doubt = 0u64;
    let mut snapshot_reads = 0u64;
    let mut quiesced = true;
    let mut node_recovery = None;
    let mut switch_recovery = None;
    let mut checkpoints_taken = 0usize;
    let mut expected_checkpoint = None;
    let mut wave_committed = Vec::with_capacity(options.waves.max(1));
    let mut supervisor: Option<SupervisorReport> = None;
    let mut resolver = ResolverReport::default();

    for wave in 0..options.waves.max(1) {
        let (c, a, d, s) = if options.supervised {
            // The drivers run detached while the supervisor loop owns this
            // thread: trip detection, degraded mode, probes, in-doubt
            // resolution and re-admission all happen *during* the wave, with
            // no manual recovery calls anywhere.
            let (handles, active) = spawn_wave_drivers(&cluster, &workload, options, wave)?;
            let sup = cluster.supervise_until(|| active.load(Ordering::Acquire) == 0, Duration::from_secs(20))?;
            resolver.merge(&sup.resolver);
            match supervisor.as_mut() {
                Some(total) => {
                    total.degraded.extend(sup.degraded);
                    total.recovered.extend(sup.recovered);
                    total.probes_sent += sup.probes_sent;
                    total.probes_answered += sup.probes_answered;
                    total.resolver.merge(&sup.resolver);
                    total.deadline_forced |= sup.deadline_forced;
                    total.trips_seen = sup.trips_seen;
                }
                None => supervisor = Some(sup),
            }
            join_wave(handles)?
        } else if options.checkpoint_interval.is_some() {
            // The checkpointer races the wave's live traffic on purpose:
            // the scans are fuzzy, and the invariant checker later proves
            // checkpoint+tail reconstruction still matches the live state.
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                let stop = &stop;
                let cluster = &cluster;
                let checkpointer = scope.spawn(|| {
                    let mut taken = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        taken += cluster.maybe_checkpoint();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    taken
                });
                let result = drive_wave(cluster, &workload, options, wave);
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                checkpoints_taken += checkpointer.join().expect("checkpointer panicked");
                result
            })?
        } else {
            drive_wave(&cluster, &workload, options, wave)?
        };
        committed += c;
        aborted += a;
        in_doubt += d;
        snapshot_reads += s;
        wave_committed.push(c);
        quiesced &= cluster.quiesce_switch(Duration::from_secs(10));

        if wave == 0 {
            if let Some(node) = options.crash_node {
                if options.torn_checkpoint {
                    // Crash-during-checkpoint drill: one complete generation,
                    // then a newer one torn mid-write by the "crash".
                    // Recovery must skip the torn blob and fall back.
                    let complete = cluster.checkpoint_node(node)?;
                    let _torn_generation = cluster.checkpoint_node(node)?;
                    assert!(
                        cluster.shared().node(node).checkpoints().tear_latest(17),
                        "the drill needs a blob to tear"
                    );
                    expected_checkpoint = Some(complete);
                }
                node_recovery = Some(cluster.crash_and_recover_node(node)?);
            }
            if options.crash_switch {
                let reoffload_seed = options.reoffload.then_some(options.seed ^ 0xC0DE);
                // In a multi-switch topology this crashes and recovers each
                // switch *independently* (per-switch WAL-suffix replay,
                // epoch and reshuffle) and merges the per-switch reports.
                switch_recovery = Some(cluster.crash_and_recover_switch(reoffload_seed)?);
            }
        }
    }

    // A final resolution pass over anything still parked on the in-doubt
    // ledger (entries noted after the last supervisor pass, or re-parked as
    // unresolved). The switch path is quiescent here, so status verdicts
    // are trustworthy.
    if options.supervised {
        let mut session = cluster.session(NodeId(0))?;
        resolver.merge(&session.resolve_in_doubt()?);
    }

    // Every wave already ended in a quiesce, so the cluster is quiet here.
    let mut invariants = invariants::check(&cluster, semantics);
    if options.supervised {
        invariants.resolved_committed = resolver.resolved_committed;
        invariants.resolved_retried = resolver.resolved_retried;
        // What matters for cleanliness is the *final* ledger, not how many
        // passes an entry needed: an entry unresolved in one pass and
        // settled in a later one is settled.
        invariants.unresolved = cluster.health().ledger_len() as u64;
    }
    let repro =
        format!("{} cargo test --offline --test chaos smoke_reproduce_from_env -- --nocapture", options.repro_env());
    Ok(ChaosReport {
        workload: options.workload.name(),
        seed: options.seed,
        committed,
        aborted,
        in_doubt,
        in_doubt_per_switch: cluster.health().in_doubt_per_switch(),
        wave_committed,
        supervisor,
        snapshot_reads,
        faults_injected: cluster.faults_injected(),
        fault_events: cluster.fault_trace(),
        invariants,
        node_recovery,
        switch_recovery,
        checkpoints_taken,
        expected_checkpoint,
        quiesced,
        minimized_faults: Vec::new(),
        repro,
    })
}

/// One traffic wave: every `(node, worker)` pair drives its session through
/// `txns_per_wave` generated transactions. Returns (committed, aborted,
/// in-doubt, snapshot-read) counts.
fn drive_wave(
    cluster: &Cluster,
    workload: &Arc<dyn Workload>,
    options: &ChaosOptions,
    wave: usize,
) -> Result<(u64, u64, u64, u64)> {
    let (handles, _active) = spawn_wave_drivers(cluster, workload, options, wave)?;
    join_wave(handles)
}

type WaveCounts = (u64, u64, u64, u64);
type WaveHandle = std::thread::JoinHandle<Result<WaveCounts>>;

/// Spawns one driver thread per `(node, worker)` pair and returns the
/// handles plus a live-driver counter. Sessions are self-contained (they own
/// their engine handle and submission queue), so the threads do not borrow
/// the cluster — the caller's thread is free to run the self-healing
/// supervisor while the wave is in flight, watching the counter to know when
/// the drivers are done.
fn spawn_wave_drivers(
    cluster: &Cluster,
    workload: &Arc<dyn Workload>,
    options: &ChaosOptions,
    wave: usize,
) -> Result<(Vec<WaveHandle>, Arc<AtomicUsize>)> {
    let active = Arc::new(AtomicUsize::new((options.nodes as usize) * (options.workers as usize)));
    let mut handles = Vec::new();
    for node in 0..options.nodes {
        for worker in 0..options.workers {
            let mut session = cluster.session(NodeId(node))?;
            session.set_max_attempts(options.max_attempts);
            let workload = Arc::clone(workload);
            let ctx = WorkloadCtx::new(options.nodes, NodeId(node), options.distributed_prob);
            let seed = options
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((wave as u64) << 40 | (node as u64) << 20 | worker as u64);
            let count = options.txns_per_wave;
            let (ro_frac, snapshot_arm) = (options.read_only_frac, options.snapshot_arm);
            let active = Arc::clone(&active);
            handles.push(std::thread::spawn(move || {
                // Decrement on every exit path — return, error, or panic
                // unwind — so the supervisor always learns the wave ended.
                struct Done(Arc<AtomicUsize>);
                impl Drop for Done {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::Release);
                    }
                }
                let _done = Done(active);
                let mut rng = FastRng::new(seed);
                let (mut committed, mut aborted, mut in_doubt) = (0u64, 0u64, 0u64);
                for _ in 0..count {
                    let mut req = workload.generate(&ctx, &mut rng);
                    // The conversion decision costs one rng draw in every
                    // arm (schedules stay seed-identical whichever arm
                    // executes them); frac 0.0 skips the draw so legacy
                    // scenarios keep their historical schedules. Inserts
                    // are dropped rather than converted — an insert's key
                    // has no pre-image, so reading it would be a guaranteed
                    // TupleNotFound (TPC-C NewOrder/Payment). The transform
                    // is keyed on the generated ops alone, so both arms
                    // execute the same converted footprint.
                    if ro_frac > 0.0 && rng.gen_f64() < ro_frac {
                        let reads: Vec<TxnOp> = req
                            .ops
                            .iter()
                            .filter(|op| !matches!(op.kind, OpKind::Insert(_)))
                            .map(|op| TxnOp::new(op.tuple, OpKind::Read, op.home))
                            .collect();
                        if !reads.is_empty() {
                            req.ops = reads;
                            if snapshot_arm {
                                req = req.into_read_only();
                            }
                        }
                    }
                    match session.execute_request(&req) {
                        Ok(outcome) => {
                            committed += 1;
                            if outcome.in_doubt {
                                in_doubt += 1;
                            }
                        }
                        Err(e) if e.is_abort() => aborted += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok((committed, aborted, in_doubt, session.take_stats().snapshot_reads))
            }));
        }
    }
    Ok((handles, active))
}

/// Joins every driver of a wave and sums the counts.
///
/// Joins *every* driver before propagating any error, so no driver thread
/// outlives the wave and keeps submitting into a cluster the caller
/// believes is quiet. A driver panic is re-raised with its own payload —
/// it carries the seed-specific diagnostic the repro workflow needs.
fn join_wave(handles: Vec<WaveHandle>) -> Result<WaveCounts> {
    let joined: Vec<std::thread::Result<Result<WaveCounts>>> = handles.into_iter().map(|h| h.join()).collect();
    let results: Vec<Result<WaveCounts>> =
        joined.into_iter().map(|r| r.unwrap_or_else(|payload| std::panic::resume_unwind(payload))).collect();
    let (mut committed, mut aborted, mut in_doubt, mut snapshot_reads) = (0u64, 0u64, 0u64, 0u64);
    for result in results {
        let (c, a, d, s) = result?;
        committed += c;
        aborted += a;
        in_doubt += d;
        snapshot_reads += s;
    }
    Ok((committed, aborted, in_doubt, snapshot_reads))
}

/// Re-sends an already-executed logged intent to the switch, byte for byte —
/// the retransmission bug the exactly-once invariant exists to catch. Used
/// by the negative tests to prove the checker is alive. Returns the tuple
/// count of the replayed intent.
///
/// # Panics
/// Panics if called twice on the same cluster (its reply endpoint can only
/// be registered once).
pub fn resend_logged_intent(cluster: &Cluster, txn: TxnId) -> Result<usize> {
    let ops = cluster
        .shared()
        .nodes
        .iter()
        .find_map(|storage| {
            storage.wal().records().into_iter().find_map(|r| match r {
                LogRecord::SwitchIntent { txn: t, ops } if t == txn => Some(ops),
                _ => None,
            })
        })
        .ok_or_else(|| Error::InvalidTxn(format!("no logged intent for {txn}")))?;

    let index = cluster.shared().hot_index.load();
    let mut instructions = Vec::with_capacity(ops.len());
    for op in &ops {
        let slot =
            index.slot(op.tuple).ok_or_else(|| Error::InvalidTxn(format!("{} is no longer offloaded", op.tuple)))?;
        let mut instr = Instruction::new(slot, op.op, op.operand);
        instr.operand_from = op.operand_from;
        instructions.push(instr);
    }
    // Route the duplicate to the switch that owns the intent's tuples, just
    // like the executor would (an intent is single-switch by construction).
    let switch = ops
        .first()
        .and_then(|op| index.owner(op.tuple))
        .ok_or_else(|| Error::InvalidTxn(format!("intent of {txn} has no owning switch")))?;

    // A rogue endpoint outside the worker id space.
    let origin = EndpointId::Node(NodeId(u16::MAX));
    let mailbox = cluster.shared().fabric.register(origin);
    let mut header = TxnHeader::new(origin, u64::MAX);
    header.txn_id = txn;
    let sent = cluster.shared().fabric.send(
        origin,
        EndpointId::Switch(switch),
        SwitchMessage::Txn(SwitchTxn::new(header, instructions)),
    );
    if !sent {
        return Err(Error::Disconnected);
    }
    // Wait for the duplicate execution to finish so the checker sees it.
    loop {
        match mailbox.recv_timeout(Duration::from_secs(10)) {
            RecvOutcome::Msg(env) => {
                if matches!(env.payload, SwitchMessage::TxnReply(_)) {
                    break;
                }
            }
            // The two outcomes are distinct: a timeout means the duplicated
            // packet (or its reply) was lost — possible when the cluster
            // itself injects faults — while a disconnect means it shut down.
            RecvOutcome::TimedOut => {
                return Err(Error::SwitchControlPlane(format!(
                    "no reply to the duplicated intent of {txn} within 10s (packet lost under fault injection?)"
                )));
            }
            RecvOutcome::Disconnected => return Err(Error::Disconnected),
        }
    }
    Ok(ops.len())
}
