//! Machine-readable benchmark output: a hand-rolled, offline-safe JSON
//! writer/parser for `BENCH_*.json` and the ±tolerance regression gate that
//! `ci.sh` runs against the committed baseline.
//!
//! The build environment has no crates.io access, so there is no
//! `serde_json`; the schema is small and fixed, and the parser below is
//! strict about exactly the failure modes the CI gate cares about: a missing
//! field, a non-finite number (`NaN`/`inf` are not JSON and are rejected by
//! the number grammar) or a wrong type all yield a structured error.
//!
//! ## Schema (`p4db-bench-v1`)
//!
//! ```json
//! {
//!   "schema": "p4db-bench-v1",
//!   "datapoints": [
//!     {"figure": "fig01", "params": "YCSB-A", "tps": 1234.5,
//!      "p50_us": 250.0, "p99_us": 900.0, "speedup": 1.42}
//!   ]
//! }
//! ```
//!
//! Writers merge by figure: emitting points for `fig01` replaces every
//! existing `fig01` point in the file and leaves other figures' points
//! untouched, so `figures` and `micro` can update the same `BENCH_10.json`
//! independently.

use p4db_core::BenchPoint;
use std::fmt;
use std::path::Path;

pub const SCHEMA: &str = "p4db-bench-v1";

/// A structured failure while parsing or validating a `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchJsonError(pub String);

impl fmt::Display for BenchJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BENCH json error: {}", self.0)
    }
}

impl std::error::Error for BenchJsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, BenchJsonError> {
    Err(BenchJsonError(message.into()))
}

// ---------------------------------------------------------------------------
// Minimal JSON value model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), at: 0 }
    }

    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), BenchJsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.at += 1;
                Ok(())
            }
            got => err(format!("expected {:?} at byte {}, found {:?}", b as char, self.at, got.map(|g| g as char))),
        }
    }

    fn value(&mut self) -> Result<Json, BenchJsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.at)),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, BenchJsonError> {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn object(&mut self) -> Result<Json, BenchJsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return err(format!("expected ',' or '}}' at byte {}, found {:?}", self.at, other)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, BenchJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return err(format!("expected ',' or ']' at byte {}, found {:?}", self.at, other)),
            }
        }
    }

    fn string(&mut self) -> Result<String, BenchJsonError> {
        self.expect(b'"')?;
        // Accumulate raw bytes and decode once: the input is valid UTF-8 and
        // the `"`/`\` delimiters are ASCII (never UTF-8 continuation bytes),
        // so multibyte characters like `µ` pass through byte-wise intact.
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.at) {
            self.at += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out)
                        .map_err(|_| BenchJsonError(format!("invalid UTF-8 in string ending at byte {}", self.at)))
                }
                b'\\' => {
                    let esc = self.bytes.get(self.at).copied();
                    self.at += 1;
                    match esc {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    let mut buf = [0u8; 4];
                                    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                                    self.at += 4;
                                }
                                None => return err(format!("invalid \\u escape at byte {}", self.at)),
                            }
                        }
                        other => return err(format!("unsupported escape {other:?} at byte {}", self.at)),
                    }
                }
                _ => out.push(b),
            }
        }
        err("unterminated string")
    }

    fn number(&mut self) -> Result<Json, BenchJsonError> {
        self.skip_ws();
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        match text.parse::<f64>() {
            // `NaN`/`inf` never reach here (the grammar above cannot produce
            // them), so every parsed number is finite.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => err(format!("invalid number {text:?} at byte {start}")),
        }
    }

    fn parse(mut self) -> Result<Json, BenchJsonError> {
        let value = self.value()?;
        self.skip_ws();
        if self.at != self.bytes.len() {
            return err(format!("trailing garbage at byte {}", self.at));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Schema-level read/write
// ---------------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders datapoints in the `p4db-bench-v1` schema. Non-finite numbers are
/// serialised as-is (`NaN`), which the parser — and therefore the CI gate —
/// rejects: a corrupted measurement cannot silently pass.
pub fn render(points: &[BenchPoint]) -> String {
    let mut out = String::from("{\n  \"schema\": \"");
    out.push_str(SCHEMA);
    out.push_str("\",\n  \"datapoints\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": \"{}\", \"params\": \"{}\", \"tps\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"speedup\": {}}}{}\n",
            escape(&p.figure),
            escape(&p.params),
            p.tps,
            p.p50_us,
            p.p99_us,
            p.speedup,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses and validates a `BENCH_*.json` document: schema tag, and for every
/// datapoint all six fields present with the right types. Missing fields,
/// wrong types and non-finite numbers are structured errors.
pub fn parse(text: &str) -> Result<Vec<BenchPoint>, BenchJsonError> {
    let root = Parser::new(text).parse()?;
    match root.get("schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(Json::Str(s)) => return err(format!("unsupported schema {s:?} (expected {SCHEMA:?})")),
        _ => return err("missing \"schema\" field"),
    }
    let Some(Json::Arr(raw)) = root.get("datapoints") else {
        return err("missing \"datapoints\" array");
    };
    let mut points = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let str_field = |key: &str| match item.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            Some(_) => err(format!("datapoint {i}: field {key:?} is not a string")),
            None => err(format!("datapoint {i}: missing field {key:?}")),
        };
        let num_field = |key: &str| match item.get(key) {
            Some(Json::Num(v)) => Ok(*v),
            Some(_) => err(format!("datapoint {i}: field {key:?} is not a finite number")),
            None => err(format!("datapoint {i}: missing field {key:?}")),
        };
        points.push(BenchPoint {
            figure: str_field("figure")?,
            params: str_field("params")?,
            tps: num_field("tps")?,
            p50_us: num_field("p50_us")?,
            p99_us: num_field("p99_us")?,
            speedup: num_field("speedup")?,
        });
    }
    Ok(points)
}

/// Writes `points` into `path`, merging by figure: figures being written
/// replace their existing points, other figures survive. A missing or
/// unparseable existing file is treated as empty (first run, or a corrupt
/// file being regenerated).
pub fn write_merged(path: &Path, points: &[BenchPoint]) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).ok().and_then(|text| parse(&text).ok()).unwrap_or_default();
    let replaced: std::collections::HashSet<&str> = points.iter().map(|p| p.figure.as_str()).collect();
    let mut merged: Vec<BenchPoint> = existing.into_iter().filter(|p| !replaced.contains(p.figure.as_str())).collect();
    merged.extend(points.iter().cloned());
    merged.sort_by(|a, b| (&a.figure, &a.params).cmp(&(&b.figure, &b.params)));
    std::fs::write(path, render(&merged))
}

/// Default output path: `$P4DB_BENCH_JSON`, or `BENCH_10.json` at the
/// workspace root (the current trajectory file; `BENCH_4.json` through
/// `BENCH_9.json` are the committed history of earlier PRs).
pub fn output_path() -> std::path::PathBuf {
    match std::env::var("P4DB_BENCH_JSON") {
        Ok(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json"),
    }
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// Tolerances of the CI regression gate. The smoke profile measures for a
/// few milliseconds per point on a loaded single-core runner, so the
/// throughput band is wide — the gate is a tripwire for collapses and schema
/// drift, not a microbenchmark judge; `EXPERIMENTS.md` and the committed
/// `BENCH_10.json` carry the trend.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Max allowed throughput ratio between current and baseline, either
    /// direction (`4.0` = a point may be up to 4× slower than baseline).
    pub tps_ratio: f64,
    /// Minimum speedup the `micro` "switch hot path batched-vs-unbatched"
    /// point must show — the acceptance bar of the batching work (measured
    /// ~2x; anything under 1.3x on the smoke profile is a real regression,
    /// not noise).
    pub min_batch_speedup: f64,
    /// Minimum speedup of the gated `fig_node_scaling` datapoint (the
    /// sharded node hot path over the seed's single-latch engine, all-cold
    /// YCSB-A at 8 workers) — the acceptance bar of the sharding work
    /// (measured ~1.7x before versioned rows, ~1.4x since the sharded arm
    /// started paying commit-time version installs the single-latch
    /// baseline skips — with a noise tail down to ~1.2 on the single-core
    /// runner, hence the 1.15 floor and the figure's own best-of-three
    /// sampling on top of its 200 ms per-point floor. The regression class
    /// this catches is real: a blocking commit-clock publish measured
    /// 0.9–1.1x before it was fixed).
    pub min_node_scaling_speedup: f64,
    /// Minimum speedup of the gated `fig_switch_scaling` datapoint (2
    /// switches over 1 switch at a fixed aggregate hot-set size, saturated
    /// pipeline) — the acceptance bar of the multi-switch topology work
    /// (measured ~1.8x; under 1.25x even on the smoke profile means the
    /// second switch is not relieving the pipeline bottleneck).
    pub min_switch_scaling_speedup: f64,
    /// Minimum speedup of the gated `fig_recovery` datapoint (checkpoint +
    /// segment-tail restart over genesis replay of the whole log) — the
    /// acceptance bar of the durability work. The figure grows the log until
    /// it dwarfs the table, so a checkpointed restart that is not at least
    /// 2x faster means the tail-skip read path or the shard-parallel
    /// write-back regressed.
    pub min_recovery_speedup: f64,
    /// Minimum speedup of the gated `fig_read_mix` datapoint (the lock-free
    /// snapshot read path over 2PL on the same pooled schedule, hot-skewed
    /// YCSB-A at 95% whole-transaction reads) — the acceptance bar of the
    /// versioned-rows work (measured ~2x; under 1.3x on the smoke profile
    /// means read-only transactions are paying lock-table costs again).
    pub min_read_mostly_speedup: f64,
    /// Minimum degraded-throughput floor of the gated `fig_outage`
    /// datapoint, expressed as min-window/max-window committed throughput
    /// across the blackhole → breaker-trip → degraded → re-admit timeline.
    /// The self-healing acceptance criterion is liveness, not speed: every
    /// window must keep committing (the figure itself asserts non-zero
    /// windows), and this floor catches a degraded mode that technically
    /// commits but has collapsed to a trickle. Measured ~0.3–0.7 depending
    /// on how much of the trip window is spent inside switch timeouts; 0.02
    /// is the collapse tripwire, far below any healthy run.
    pub min_degraded_floor_frac: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tps_ratio: 4.0,
            min_batch_speedup: 1.3,
            min_node_scaling_speedup: 1.15,
            min_switch_scaling_speedup: 1.25,
            min_recovery_speedup: 2.0,
            min_read_mostly_speedup: 1.3,
            min_degraded_floor_frac: 0.02,
        }
    }
}

/// The `params` key of the micro datapoint the batching tripwire checks.
pub const BATCHING_PARAMS: &str = "switch hot path batched-vs-unbatched";

/// The `params` key of the gated `fig_node_scaling` datapoint.
pub const NODE_SCALING_PARAMS: &str = "YCSB-A all-cold workers=8";

/// The `params` key of the gated `fig_switch_scaling` datapoint.
pub const SWITCH_SCALING_PARAMS: &str = "switches=2";

/// The `params` key of the micro admission-resolution datapoint (recorded,
/// not gated: the node-scaling floor covers the end-to-end effect).
pub const ADMISSION_PARAMS: &str = "admission one-hash resolution vs seed lock+lookup";

/// The `params` key of the gated `fig_recovery` datapoint.
pub const RECOVERY_PARAMS: &str = "checkpointed vs genesis restart";

/// The `params` key of the gated `fig_read_mix` datapoint.
pub const READ_MIX_PARAMS: &str = "YCSB-A 95% reads workers=4";

/// The `params` key of the gated `fig_outage` datapoint. Its `speedup`
/// field carries the degraded-throughput floor fraction (min window tps /
/// max window tps across the outage timeline), not a speedup.
pub const OUTAGE_PARAMS: &str = "SmallBank blackhole switch=0 supervised";

/// The `params` key of the micro group-commit encode datapoint (recorded,
/// not gated: the recovery floor covers the end-to-end durability effect).
pub const GROUP_ENCODE_PARAMS: &str = "wal group encode binary-vs-text";

/// Diffs `current` against `baseline` under the tolerance band. Returns one
/// human-readable line per violation; empty means the gate passes.
pub fn gate(current: &[BenchPoint], baseline: &[BenchPoint], config: &GateConfig) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|p| p.figure == base.figure && p.params == base.params) else {
            continue; // the smoke profile runs a subset of figures
        };
        if base.tps > 0.0 && cur.tps > 0.0 {
            let ratio = base.tps / cur.tps;
            if ratio > config.tps_ratio || ratio < 1.0 / config.tps_ratio {
                failures.push(format!(
                    "{} [{}]: throughput {:.0} tps vs baseline {:.0} tps exceeds the ±{}x band",
                    cur.figure, cur.params, cur.tps, base.tps, config.tps_ratio
                ));
            }
        } else if base.tps > 0.0 {
            failures.push(format!("{} [{}]: throughput collapsed to {:.0} tps", cur.figure, cur.params, cur.tps));
        }
    }
    for cur in current {
        if cur.figure == "micro" && cur.params == BATCHING_PARAMS && cur.speedup < config.min_batch_speedup {
            failures.push(format!(
                "micro [{}]: batched hot path is only {:.2}x over unbatched (gate requires >= {:.2}x)",
                cur.params, cur.speedup, config.min_batch_speedup
            ));
        }
        if cur.figure == "fig_node_scaling"
            && cur.params == NODE_SCALING_PARAMS
            && cur.speedup < config.min_node_scaling_speedup
        {
            failures.push(format!(
                "fig_node_scaling [{}]: sharded node hot path is only {:.2}x over the single-latch baseline (gate \
                 requires >= {:.2}x)",
                cur.params, cur.speedup, config.min_node_scaling_speedup
            ));
        }
        if cur.figure == "fig_switch_scaling"
            && cur.params == SWITCH_SCALING_PARAMS
            && cur.speedup < config.min_switch_scaling_speedup
        {
            failures.push(format!(
                "fig_switch_scaling [{}]: two switches are only {:.2}x over one switch (gate requires >= {:.2}x)",
                cur.params, cur.speedup, config.min_switch_scaling_speedup
            ));
        }
        if cur.figure == "fig_recovery" && cur.params == RECOVERY_PARAMS && cur.speedup < config.min_recovery_speedup {
            failures.push(format!(
                "fig_recovery [{}]: checkpointed restart is only {:.2}x over genesis replay (gate requires >= {:.2}x)",
                cur.params, cur.speedup, config.min_recovery_speedup
            ));
        }
        if cur.figure == "fig_read_mix" && cur.params == READ_MIX_PARAMS && cur.speedup < config.min_read_mostly_speedup
        {
            failures.push(format!(
                "fig_read_mix [{}]: the snapshot read path is only {:.2}x over 2PL (gate requires >= {:.2}x)",
                cur.params, cur.speedup, config.min_read_mostly_speedup
            ));
        }
        if cur.figure == "fig_outage" && cur.params == OUTAGE_PARAMS && cur.speedup < config.min_degraded_floor_frac {
            failures.push(format!(
                "fig_outage [{}]: degraded-mode throughput floor is only {:.3} of peak (gate requires >= {:.3})",
                cur.params, cur.speedup, config.min_degraded_floor_frac
            ));
        }
    }
    // Anti-vacuity: if a figure with a gated datapoint ran at all, that
    // datapoint must be among the results — otherwise a sweep or label edit
    // could silently stop the floor from being enforced.
    for (figure, gated_params, what) in [
        ("fig_node_scaling", NODE_SCALING_PARAMS, "node-scaling speedup floor"),
        ("fig_switch_scaling", SWITCH_SCALING_PARAMS, "switch-scaling speedup floor"),
        ("fig_recovery", RECOVERY_PARAMS, "recovery speedup floor"),
        ("fig_read_mix", READ_MIX_PARAMS, "read-mostly speedup floor"),
        ("fig_outage", OUTAGE_PARAMS, "degraded-throughput floor"),
        ("micro", BATCHING_PARAMS, "batching speedup floor"),
    ] {
        if current.iter().any(|p| p.figure == figure)
            && !current.iter().any(|p| p.figure == figure && p.params == gated_params)
        {
            failures.push(format!(
                "{figure} ran without its gated datapoint [{gated_params}]; the {what} was not \
                                   checked"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(figure: &str, params: &str, tps: f64, speedup: f64) -> BenchPoint {
        BenchPoint { figure: figure.into(), params: params.into(), tps, p50_us: 10.0, p99_us: 90.0, speedup }
    }

    #[test]
    fn bench_json_roundtrip_is_exact() {
        // Includes escapes and multibyte UTF-8 (µ), which must survive the
        // byte-level parser intact.
        let points = vec![point("fig01", "YCSB-A \"quoted\" 250µs", 1234.5, 1.42), point("micro", "wal", 5e6, 1.0)];
        let text = render(&points);
        assert_eq!(parse(&text).unwrap(), points);
        assert_eq!(parse(&render(&[])).unwrap(), Vec::new());
        // \u escapes decode to the same characters.
        let escaped = text.replace('µ', "\\u00b5");
        assert_eq!(parse(&escaped).unwrap(), points);
    }

    #[test]
    fn bench_json_rejects_nan_missing_and_wrong_schema() {
        // A NaN field: render writes it verbatim ("NaN" is not a JSON
        // number), parse must reject it.
        let text = render(&[point("figx", "p", f64::NAN, 1.0)]);
        assert!(text.contains("NaN"));
        assert!(parse(&text).is_err());
        // A missing field.
        let text = format!(
            "{{\"schema\": \"{SCHEMA}\", \"datapoints\": [{{\"figure\": \"f\", \"params\": \"p\", \"tps\": 1.0, \
             \"p50_us\": 1.0, \"p99_us\": 1.0}}]}}"
        );
        assert!(parse(&text).unwrap_err().0.contains("missing field \"speedup\""));
        // A wrong-typed field.
        let text = format!(
            "{{\"schema\": \"{SCHEMA}\", \"datapoints\": [{{\"figure\": \"f\", \"params\": \"p\", \"tps\": \"fast\", \
             \"p50_us\": 1.0, \"p99_us\": 1.0, \"speedup\": 1.0}}]}}"
        );
        assert!(parse(&text).unwrap_err().0.contains("not a finite number"));
        // Schema drift.
        assert!(parse("{\"schema\": \"v999\", \"datapoints\": []}").unwrap_err().0.contains("unsupported schema"));
        assert!(parse("{\"datapoints\": []}").unwrap_err().0.contains("missing \"schema\""));
        assert!(parse("not json").is_err());
    }

    #[test]
    fn write_merged_replaces_by_figure_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join(format!("p4db-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        write_merged(&path, &[point("fig01", "a", 100.0, 1.0), point("micro", "wal", 5e6, 1.0)]).unwrap();
        // Re-emitting fig01 replaces its points; micro survives.
        write_merged(&path, &[point("fig01", "b", 200.0, 2.0)]).unwrap();
        let merged = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|p| p.figure == "fig01" && p.params == "b"));
        assert!(merged.iter().all(|p| !(p.figure == "fig01" && p.params == "a")));
        assert!(merged.iter().any(|p| p.figure == "micro"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_flags_collapses_and_weak_batching_only() {
        let baseline = vec![point("fig01", "YCSB-A", 1000.0, 1.4)];
        let config = GateConfig::default();
        // Within the band: quiet (including points absent from the subset).
        let ok = vec![point("fig01", "YCSB-A", 400.0, 1.2), point("fig99", "new", 5.0, 1.0)];
        assert!(gate(&ok, &baseline, &config).is_empty());
        // Collapse: flagged.
        let slow = vec![point("fig01", "YCSB-A", 100.0, 1.2)];
        let failures = gate(&slow, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("band"));
        // Batching tripwire.
        let weak = vec![point("micro", BATCHING_PARAMS, 1000.0, 1.2)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("batched hot path"));
        let strong = vec![point("micro", BATCHING_PARAMS, 1000.0, 1.6)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        // Node-scaling tripwire.
        let weak = vec![point("fig_node_scaling", NODE_SCALING_PARAMS, 1000.0, 1.05)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("single-latch baseline"));
        let strong = vec![point("fig_node_scaling", NODE_SCALING_PARAMS, 1000.0, 1.7)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        // Other fig_node_scaling params are not speedup-gated — but running
        // the figure without the gated datapoint is itself a failure (the
        // floor must not silently stop being enforced).
        let other = vec![point("fig_node_scaling", "TPC-C 4WH workers=2", 1000.0, 0.9)];
        let failures = gate(&other, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("without its gated datapoint"));
        let both = vec![
            point("fig_node_scaling", "TPC-C 4WH workers=2", 1000.0, 0.9),
            point("fig_node_scaling", NODE_SCALING_PARAMS, 1000.0, 1.7),
        ];
        assert!(gate(&both, &baseline, &config).is_empty());
        // Switch-scaling tripwire.
        let weak = vec![point("fig_switch_scaling", SWITCH_SCALING_PARAMS, 1000.0, 1.1)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("two switches"));
        let strong = vec![point("fig_switch_scaling", SWITCH_SCALING_PARAMS, 1000.0, 1.8)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        let missing_gated = vec![point("fig_switch_scaling", "switches=4", 1000.0, 2.0)];
        let failures = gate(&missing_gated, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("switch-scaling speedup floor"));
        // Recovery tripwire.
        let weak = vec![point("fig_recovery", RECOVERY_PARAMS, 1000.0, 1.4)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("checkpointed restart"));
        let strong = vec![point("fig_recovery", RECOVERY_PARAMS, 1000.0, 4.0)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        let missing_gated = vec![point("fig_recovery", "genesis only", 1000.0, 1.0)];
        let failures = gate(&missing_gated, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("recovery speedup floor"));
        // Read-mix tripwire.
        let weak = vec![point("fig_read_mix", READ_MIX_PARAMS, 1000.0, 1.1)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("snapshot read path"));
        let strong = vec![point("fig_read_mix", READ_MIX_PARAMS, 1000.0, 2.0)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        let missing_gated = vec![point("fig_read_mix", "YCSB-A 50% reads workers=4", 1000.0, 2.0)];
        let failures = gate(&missing_gated, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("read-mostly speedup floor"));
        // Outage tripwire: the `speedup` slot carries the degraded floor
        // fraction, gated against collapse.
        let weak = vec![point("fig_outage", OUTAGE_PARAMS, 1000.0, 0.005)];
        let failures = gate(&weak, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("degraded-mode throughput floor"));
        let strong = vec![point("fig_outage", OUTAGE_PARAMS, 1000.0, 0.4)];
        assert!(gate(&strong, &baseline, &config).is_empty());
        let missing_gated = vec![point("fig_outage", "unsupervised", 1000.0, 0.4)];
        let failures = gate(&missing_gated, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("degraded-throughput floor"));
        // Same protection for the batching tripwire: a micro run that lost
        // its gated datapoint fails rather than passing vacuously.
        let missing = vec![point("micro", "wal append", 1000.0, 1.0)];
        let failures = gate(&missing, &baseline, &config);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("batching speedup floor"));
    }

    /// The committed `BENCH_*.json` trajectory and `BENCH_baseline.json`
    /// must always be schema-valid — this is the CI check that the emitted
    /// JSON parses and contains no missing/NaN fields, and that the
    /// committed hot-path batching, node-scaling and switch-scaling
    /// datapoints meet their acceptance bars. Each `BENCH_N.json` predates
    /// the figures of later PRs, so only the newer files are held to the
    /// newer bars.
    #[test]
    fn gate_committed_bench_files_are_schema_valid() {
        for name in [
            "BENCH_4.json",
            "BENCH_5.json",
            "BENCH_6.json",
            "BENCH_7.json",
            "BENCH_9.json",
            "BENCH_10.json",
            "BENCH_baseline.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name);
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"));
            let points = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!points.is_empty(), "{name} has no datapoints");
            for figure in ["fig01", "fig13", "micro"] {
                assert!(points.iter().any(|p| p.figure == figure), "{name} is missing {figure} datapoints");
            }
            let batching = points
                .iter()
                .find(|p| p.figure == "micro" && p.params == BATCHING_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the batching datapoint"));
            assert!(
                batching.speedup >= 1.3,
                "{name}: committed batched hot path speedup {:.2}x is below the 1.3x acceptance bar",
                batching.speedup
            );
            if name == "BENCH_4.json" {
                continue;
            }
            let node_scaling = points
                .iter()
                .find(|p| p.figure == "fig_node_scaling" && p.params == NODE_SCALING_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the node-scaling datapoint"));
            // BENCH_5.json (the long-measure trajectory run) carries the
            // 1.5x acceptance number; the baseline is regenerated under the
            // noisier smoke profile and is held to the CI gate floor.
            let bar = if name == "BENCH_5.json" { 1.5 } else { GateConfig::default().min_node_scaling_speedup };
            assert!(
                node_scaling.speedup >= bar,
                "{name}: committed node-scaling speedup {:.2}x is below the {bar}x bar",
                node_scaling.speedup
            );
            assert!(
                points.iter().any(|p| p.figure == "micro" && p.params == ADMISSION_PARAMS),
                "{name} is missing the admission-resolution datapoint"
            );
            if name == "BENCH_5.json" {
                continue; // predates the switch-scaling figure
            }
            let switch_scaling = points
                .iter()
                .find(|p| p.figure == "fig_switch_scaling" && p.params == SWITCH_SCALING_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the switch-scaling datapoint"));
            let bar = GateConfig::default().min_switch_scaling_speedup;
            assert!(
                switch_scaling.speedup >= bar,
                "{name}: committed switch-scaling speedup {:.2}x is below the {bar}x acceptance bar",
                switch_scaling.speedup
            );
            if name == "BENCH_6.json" {
                continue; // predates the recovery figure
            }
            let recovery = points
                .iter()
                .find(|p| p.figure == "fig_recovery" && p.params == RECOVERY_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the recovery datapoint"));
            let bar = GateConfig::default().min_recovery_speedup;
            assert!(
                recovery.speedup >= bar,
                "{name}: committed recovery speedup {:.2}x is below the {bar}x acceptance bar",
                recovery.speedup
            );
            assert!(
                points.iter().any(|p| p.figure == "micro" && p.params == GROUP_ENCODE_PARAMS),
                "{name} is missing the group-commit encode datapoint"
            );
            if name == "BENCH_7.json" {
                continue; // predates the read-mix figure
            }
            let read_mix = points
                .iter()
                .find(|p| p.figure == "fig_read_mix" && p.params == READ_MIX_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the read-mix datapoint"));
            let bar = GateConfig::default().min_read_mostly_speedup;
            assert!(
                read_mix.speedup >= bar,
                "{name}: committed read-mostly speedup {:.2}x is below the {bar}x acceptance bar",
                read_mix.speedup
            );
            if name == "BENCH_9.json" {
                continue; // predates the outage figure
            }
            let outage = points
                .iter()
                .find(|p| p.figure == "fig_outage" && p.params == OUTAGE_PARAMS)
                .unwrap_or_else(|| panic!("{name} is missing the outage datapoint"));
            let bar = GateConfig::default().min_degraded_floor_frac;
            assert!(
                outage.speedup >= bar,
                "{name}: committed degraded-throughput floor {:.3} is below the {bar} acceptance bar",
                outage.speedup
            );
        }
    }

    /// The CI regression gate: compares the freshly emitted smoke
    /// `BENCH_*.json` (path in `$P4DB_BENCH_JSON`) against the committed
    /// baseline. Only active when `P4DB_BENCH_GATE=1` — the file does not
    /// exist during plain `cargo test` runs.
    #[test]
    fn gate_smoke_emission_against_committed_baseline() {
        if std::env::var("P4DB_BENCH_GATE").as_deref() != Ok("1") {
            return;
        }
        let current_path = output_path();
        let text = std::fs::read_to_string(&current_path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", current_path.display()));
        let current = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", current_path.display()));
        let baseline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
        let baseline = parse(&std::fs::read_to_string(&baseline_path).expect("committed baseline"))
            .expect("committed baseline parses");
        let failures = gate(&current, &baseline, &GateConfig::default());
        assert!(failures.is_empty(), "bench regression gate failed:\n  {}", failures.join("\n  "));
    }
}
