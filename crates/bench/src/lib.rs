//! # p4db-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§7). Each `benches/` target calls the `figXX_*`
//! functions below and prints the resulting markdown table; the same
//! functions are used to produce `EXPERIMENTS.md`. Every function also
//! records its raw measurements as [`BenchPoint`]s on the returned
//! [`FigureTable`], which the bench targets serialise into `BENCH_10.json`
//! (see [`json`]) — the machine-readable perf trajectory that the CI
//! regression gate diffs against `BENCH_baseline.json`.
//!
//! Scale: the harness runs the cluster in the slow-motion latency profile
//! (see `LatencyConfig::bench_profile`) so that it produces meaningful
//! contention behaviour on machines with very few cores. Consequently the
//! *absolute* throughput numbers are a constant factor below the paper's
//! 10G/Tofino testbed; the reproduction targets are the relative results —
//! who wins, by how much, and where the trends bend. Environment knobs:
//!
//! * `P4DB_MEASURE_MS` — measurement time per data point (default 250 ms).
//! * `P4DB_FULL=1`     — wider sweeps (all thread counts, both CC schemes).

pub mod json;

use p4db_common::faults::BlackholeFault;
use p4db_common::rand_util::FastRng;
use p4db_common::stats::{Phase, RunStats, WorkerStats};
use p4db_common::{CcScheme, FaultPlan, LatencyConfig, NodeId, SwitchId, SystemMode, WorkerId};
use p4db_core::{
    fmt_class_mix, fmt_speedup, fmt_tps, speedup, BenchPoint, BreakerConfig, Cluster, ClusterConfig, FigureTable,
};
use p4db_layout::LayoutStrategy;
use p4db_net::{Fabric, LatencyModel};
use p4db_storage::NodeStorage;
use p4db_switch::{LockGranularity, SwitchConfig, SwitchMessage};
use p4db_txn::{EngineConfig, EngineShared, HotIndexCell, HotSetIndex, Worker};
use p4db_workloads::{SmallBank, SmallBankConfig, Tpcc, TpccConfig, Workload, WorkloadCtx, Ycsb, YcsbConfig, YcsbMix};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Harness-wide knobs read from the environment.
#[derive(Copy, Clone, Debug)]
pub struct BenchProfile {
    pub measure: Duration,
    pub full: bool,
}

impl BenchProfile {
    pub fn from_env() -> Self {
        let ms = std::env::var("P4DB_MEASURE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(250u64);
        let full = std::env::var("P4DB_FULL").map(|v| v == "1").unwrap_or(false);
        BenchProfile { measure: Duration::from_millis(ms), full }
    }

    pub fn workers_sweep(&self) -> Vec<u16> {
        if self.full {
            vec![2, 3, 4, 5]
        } else {
            vec![2, 4]
        }
    }

    pub fn cc_sweep(&self) -> Vec<CcScheme> {
        if self.full {
            vec![CcScheme::NoWait, CcScheme::WaitDie]
        } else {
            vec![CcScheme::NoWait]
        }
    }

    pub fn distributed_sweep(&self) -> Vec<f64> {
        if self.full {
            vec![0.0, 0.25, 0.5, 0.75, 1.0]
        } else {
            vec![0.25, 0.75]
        }
    }
}

fn ycsb(mix: YcsbMix) -> Arc<dyn Workload> {
    Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 20_000, ..YcsbConfig::new(mix) }))
}

fn ycsb_with(config: YcsbConfig) -> Arc<dyn Workload> {
    Arc::new(Ycsb::new(config))
}

fn smallbank(hot_per_node: u64) -> Arc<dyn Workload> {
    Arc::new(SmallBank::new(SmallBankConfig {
        customers_per_node: 20_000,
        hot_customers_per_node: hot_per_node,
        ..SmallBankConfig::default()
    }))
}

fn tpcc(warehouses: u64) -> Arc<dyn Workload> {
    Arc::new(Tpcc::new(TpccConfig { items_loaded: 5_000, ..TpccConfig::new(warehouses) }))
}

/// Builds a cluster for one data point and measures it.
pub fn measure(
    workload: &Arc<dyn Workload>,
    mode: SystemMode,
    cc: CcScheme,
    workers_per_node: u16,
    distributed_prob: f64,
    profile: &BenchProfile,
    tweak: impl FnOnce(&mut ClusterConfig),
) -> RunStats {
    let mut config = ClusterConfig::new(mode, cc);
    config.workers_per_node = workers_per_node;
    config.distributed_prob = distributed_prob;
    tweak(&mut config);
    let cluster = Cluster::build(config, Arc::clone(workload));
    cluster.run_for(profile.measure)
}

fn no_tweak(_: &mut ClusterConfig) {}

// ---------------------------------------------------------------------------
// Figure 1: headline throughput + speedup for the three benchmarks.
// ---------------------------------------------------------------------------

pub fn fig01_headline(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 1 — OLTP throughput with and without the switch (20% distributed, high load)",
        &["Workload", "No-Switch [txn/s]", "P4DB [txn/s]", "Speedup"],
    );
    let workloads: Vec<(&str, Arc<dyn Workload>)> =
        vec![("YCSB-A", ycsb(YcsbMix::A)), ("SmallBank 8x5", smallbank(5)), ("TPC-C 8WH", tpcc(8))];
    for (name, w) in workloads {
        let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
        let p4db = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
        table.push_row(vec![
            name.to_string(),
            fmt_tps(base.throughput()),
            fmt_tps(p4db.throughput()),
            fmt_speedup(speedup(&p4db, &base)),
        ]);
        table.push_point(BenchPoint::from_run("fig01", name, &p4db, Some(&base)));
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 11 (and Figure 19): YCSB — contention and distributed sweeps.
// ---------------------------------------------------------------------------

pub fn fig11_ycsb_contention(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 11 (upper) / Figure 19 — YCSB speedup over No-Switch vs. worker threads",
        &["Mix", "CC", "Workers/node", "No-Switch [txn/s]", "LM-Switch speedup", "P4DB speedup"],
    );
    for mix in [YcsbMix::A, YcsbMix::B, YcsbMix::C] {
        let w = ycsb(mix);
        for cc in profile.cc_sweep() {
            for workers in profile.workers_sweep() {
                let base = measure(&w, SystemMode::NoSwitch, cc, workers, 0.2, profile, no_tweak);
                let lm = measure(&w, SystemMode::LmSwitch, cc, workers, 0.2, profile, no_tweak);
                let p4 = measure(&w, SystemMode::P4db, cc, workers, 0.2, profile, no_tweak);
                table.push_row(vec![
                    mix.label().to_string(),
                    cc.label().to_string(),
                    workers.to_string(),
                    fmt_tps(base.throughput()),
                    fmt_speedup(speedup(&lm, &base)),
                    fmt_speedup(speedup(&p4, &base)),
                ]);
                let params = format!("{} {} workers={workers}", mix.label(), cc.label());
                table.push_point(BenchPoint::from_run("fig11_contention", params, &p4, Some(&base)));
            }
        }
    }
    table
}

pub fn fig11_ycsb_distributed(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 11 (lower) / Figure 19 — YCSB speedup over No-Switch vs. % distributed transactions",
        &["Mix", "% distributed", "No-Switch [txn/s]", "LM-Switch speedup", "P4DB speedup"],
    );
    for mix in [YcsbMix::A, YcsbMix::B, YcsbMix::C] {
        let w = ycsb(mix);
        for dist in profile.distributed_sweep() {
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, dist, profile, no_tweak);
            let lm = measure(&w, SystemMode::LmSwitch, CcScheme::NoWait, 4, dist, profile, no_tweak);
            let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, dist, profile, no_tweak);
            table.push_row(vec![
                mix.label().to_string(),
                format!("{:.0}%", dist * 100.0),
                fmt_tps(base.throughput()),
                fmt_speedup(speedup(&lm, &base)),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("{} dist={:.0}%", mix.label(), dist * 100.0);
            table.push_point(BenchPoint::from_run("fig11_distributed", params, &p4, Some(&base)));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 12: hot/cold commit breakdown for YCSB.
// ---------------------------------------------------------------------------

pub fn fig12_hot_cold_breakdown(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 12 — committed hot vs. cold transactions (YCSB, 20% distributed, high load)",
        &["Mix", "System", "Throughput [txn/s]", "Hot share", "Cold share", "Abort rate"],
    );
    for mix in [YcsbMix::A, YcsbMix::B, YcsbMix::C] {
        let w = ycsb(mix);
        for mode in [SystemMode::NoSwitch, SystemMode::P4db] {
            let stats = measure(&w, mode, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
            let hot = stats.hot_fraction();
            table.push_row(vec![
                mix.label().to_string(),
                mode.label().to_string(),
                fmt_tps(stats.throughput()),
                format!("{:.1}%", hot * 100.0),
                format!("{:.1}%", (1.0 - hot) * 100.0),
                format!("{:.1}%", stats.abort_rate() * 100.0),
            ]);
            let params = format!("{} {}", mix.label(), mode.label());
            table.push_point(BenchPoint::from_run("fig12", params, &stats, None));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 13 / Figure 20: SmallBank.
// ---------------------------------------------------------------------------

pub fn fig13_smallbank(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 13 / Figure 20 — SmallBank speedup over No-Switch (contention and distribution sweeps)",
        &["Hot/node", "Sweep", "Value", "No-Switch [txn/s]", "P4DB [txn/s]", "Speedup"],
    );
    for hot in [5u64, 10, 15] {
        let w = smallbank(hot);
        for workers in profile.workers_sweep() {
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, workers, 0.2, profile, no_tweak);
            let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, workers, 0.2, profile, no_tweak);
            table.push_row(vec![
                hot.to_string(),
                "workers/node".into(),
                workers.to_string(),
                fmt_tps(base.throughput()),
                fmt_tps(p4.throughput()),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("hot={hot} workers={workers}");
            table.push_point(BenchPoint::from_run("fig13", params, &p4, Some(&base)));
        }
        for dist in profile.distributed_sweep() {
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, dist, profile, no_tweak);
            let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, dist, profile, no_tweak);
            table.push_row(vec![
                hot.to_string(),
                "% distributed".into(),
                format!("{:.0}%", dist * 100.0),
                fmt_tps(base.throughput()),
                fmt_tps(p4.throughput()),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("hot={hot} dist={:.0}%", dist * 100.0);
            table.push_point(BenchPoint::from_run("fig13", params, &p4, Some(&base)));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 14 / Figure 21: TPC-C.
// ---------------------------------------------------------------------------

pub fn fig14_tpcc(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 14 / Figure 21 — TPC-C speedup over No-Switch (warm transactions)",
        &["Warehouses", "Sweep", "Value", "No-Switch [txn/s]", "P4DB [txn/s]", "Speedup"],
    );
    let warehouse_sweep: Vec<u64> = if profile.full { vec![8, 16, 32] } else { vec![8, 32] };
    for wh in warehouse_sweep {
        let w = tpcc(wh);
        for workers in profile.workers_sweep() {
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, workers, 0.2, profile, no_tweak);
            let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, workers, 0.2, profile, no_tweak);
            table.push_row(vec![
                wh.to_string(),
                "workers/node".into(),
                workers.to_string(),
                fmt_tps(base.throughput()),
                fmt_tps(p4.throughput()),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("wh={wh} workers={workers}");
            table.push_point(BenchPoint::from_run("fig14", params, &p4, Some(&base)));
        }
        for dist in profile.distributed_sweep() {
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, dist, profile, no_tweak);
            let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, dist, profile, no_tweak);
            table.push_row(vec![
                wh.to_string(),
                "% distributed".into(),
                format!("{:.0}%", dist * 100.0),
                fmt_tps(base.throughput()),
                fmt_tps(p4.throughput()),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("wh={wh} dist={:.0}%", dist * 100.0);
            table.push_point(BenchPoint::from_run("fig14", params, &p4, Some(&base)));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 15a/b: varying the hot/cold transaction ratio.
// ---------------------------------------------------------------------------

pub fn fig15ab_hot_ratio(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 15a/b — varying the fraction of hot transactions (YCSB-A, 20% distributed)",
        &["% hot txns", "No-Switch [txn/s]", "P4DB [txn/s]", "Speedup"],
    );
    let ratios = if profile.full { vec![0.0, 0.25, 0.5, 0.75, 1.0] } else { vec![0.0, 0.5, 1.0] };
    for ratio in ratios {
        let w = ycsb_with(YcsbConfig { keys_per_node: 20_000, hot_txn_prob: ratio, ..YcsbConfig::new(YcsbMix::A) });
        let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
        let p4 = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
        table.push_row(vec![
            format!("{:.0}%", ratio * 100.0),
            fmt_tps(base.throughput()),
            fmt_tps(p4.throughput()),
            fmt_speedup(speedup(&p4, &base)),
        ]);
        table.push_point(BenchPoint::from_run("fig15ab", format!("hot={:.0}%", ratio * 100.0), &p4, Some(&base)));
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 15c: switch-processing optimizations ablation.
// ---------------------------------------------------------------------------

pub fn fig15c_optimizations(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 15c — multi-pass optimizations (hot-only YCSB-A, speedup over Unoptimized)",
        &["Configuration", "Throughput [txn/s]", "Speedup vs Unoptimized", "Single-pass fraction"],
    );
    // Hot-only workload: 100% hot transactions.
    let w = ycsb_with(YcsbConfig { keys_per_node: 20_000, hot_txn_prob: 1.0, ..YcsbConfig::new(YcsbMix::A) });
    let configs: Vec<(&str, SwitchConfig, LayoutStrategy)> = vec![
        ("Unoptimized", SwitchConfig::unoptimized(), LayoutStrategy::Random { seed: 7 }),
        (
            "+Fast-Recirculate",
            SwitchConfig { fast_recirculation: true, ..SwitchConfig::unoptimized() },
            LayoutStrategy::Random { seed: 7 },
        ),
        (
            "+Fine-Locking",
            SwitchConfig {
                fast_recirculation: true,
                lock_granularity: LockGranularity::FineGrained,
                ..SwitchConfig::unoptimized()
            },
            LayoutStrategy::Random { seed: 7 },
        ),
        ("+Declustered", SwitchConfig::tofino_defaults(), LayoutStrategy::Declustered),
    ];
    let mut baseline: Option<RunStats> = None;
    for (name, switch, layout) in configs {
        let (stats, single_pass) = {
            let mut config = ClusterConfig::new(SystemMode::P4db, CcScheme::NoWait);
            config.workers_per_node = 4;
            config.distributed_prob = 0.2;
            config.switch = switch;
            config.layout = layout;
            let cluster = Cluster::build(config, Arc::clone(&w));
            let stats = cluster.run_for(profile.measure);
            let single_pass = cluster.switch_stats().single_pass_fraction();
            (stats, single_pass)
        };
        let speedup_factor = baseline.as_ref().map(|b| speedup(&stats, b)).unwrap_or(1.0);
        table.push_row(vec![
            name.to_string(),
            fmt_tps(stats.throughput()),
            fmt_speedup(speedup_factor),
            format!("{:.1}%", single_pass * 100.0),
        ]);
        table.push_point(BenchPoint::from_run("fig15c", name, &stats, baseline.as_ref()));
        if baseline.is_none() {
            baseline = Some(stats);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 16: optimal vs. worst data layout (throughput + latency).
// ---------------------------------------------------------------------------

pub fn fig16_data_layout(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 16 — optimal (declustered) vs. worst data layout",
        &["Workload", "Workers/node", "Layout", "Throughput [txn/s]", "Mean latency [µs]"],
    );
    let workloads: Vec<(&str, Arc<dyn Workload>)> =
        vec![("YCSB-A", ycsb(YcsbMix::A)), ("SmallBank 8x5", smallbank(5)), ("TPC-C 8WH", tpcc(8))];
    for (name, w) in workloads {
        for workers in profile.workers_sweep() {
            for (label, layout) in [("optimal", LayoutStrategy::Declustered), ("worst", LayoutStrategy::Worst)] {
                let stats = measure(&w, SystemMode::P4db, CcScheme::NoWait, workers, 0.2, profile, |c| {
                    c.layout = layout;
                });
                table.push_row(vec![
                    name.to_string(),
                    workers.to_string(),
                    label.to_string(),
                    fmt_tps(stats.throughput()),
                    format!("{:.0}", stats.mean_latency().as_secs_f64() * 1e6),
                ]);
                let params = format!("{name} workers={workers} layout={label}");
                table.push_point(BenchPoint::from_run("fig16", params, &stats, None));
            }
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 17: hot set exceeding the switch capacity.
// ---------------------------------------------------------------------------

pub fn fig17_capacity(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 17 — throughput while the hot set outgrows the switch capacity (YCSB-A)",
        &["Switch capacity [rows]", "Hot-set size", "Offloaded", "No-Switch [txn/s]", "P4DB [txn/s]", "Speedup"],
    );
    let capacities: Vec<u64> = if profile.full { vec![1_000, 10_000, 65_000, 650_000] } else { vec![1_000, 65_000] };
    let hot_sizes: Vec<u64> =
        if profile.full { vec![400, 1_000, 10_000, 66_000, 655_000] } else { vec![400, 10_000, 66_000] };
    for capacity in capacities {
        for &hot_total in &hot_sizes {
            let hot_per_node = (hot_total / 4).max(1);
            let w = ycsb_with(YcsbConfig {
                keys_per_node: (hot_per_node * 4).max(20_000),
                hot_keys_per_node: hot_per_node,
                ..YcsbConfig::new(YcsbMix::A)
            });
            let base = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
            let (p4, offloaded) = {
                let mut config = ClusterConfig::new(SystemMode::P4db, CcScheme::NoWait);
                config.workers_per_node = 4;
                config.distributed_prob = 0.2;
                config.switch = SwitchConfig::tofino_defaults().with_total_rows(capacity);
                let cluster = Cluster::build(config, Arc::clone(&w));
                let offloaded = cluster.offloaded_tuples();
                (cluster.run_for(profile.measure), offloaded)
            };
            table.push_row(vec![
                capacity.to_string(),
                hot_total.to_string(),
                offloaded.to_string(),
                fmt_tps(base.throughput()),
                fmt_tps(p4.throughput()),
                fmt_speedup(speedup(&p4, &base)),
            ]);
            let params = format!("cap={capacity} hot={hot_total}");
            table.push_point(BenchPoint::from_run("fig17", params, &p4, Some(&base)));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Node scaling (PR 5, not a paper figure): the node-local hot path.
// ---------------------------------------------------------------------------

/// Measures the raw node-local engine + storage hot path: `workers` threads
/// each own a [`p4db_txn::Worker`] and drive generated transactions
/// closed-loop against a single node — no sessions, no submission queues and
/// (NoSwitch mode, everything cold) no switch traffic, with zero imposed
/// latencies — so the measured cost is exactly the lock table, the row
/// store, the executor and the WAL. `single_latch` selects the seed's
/// pre-sharding engine (one map latch per table, per-op lock/lookup/release)
/// as the baseline arm.
pub fn measure_node_local(
    workload: &Arc<dyn Workload>,
    workers: u16,
    single_latch: bool,
    measure: Duration,
) -> RunStats {
    let storage = if single_latch {
        NodeStorage::seed_single_latch(NodeId(0), workload.tables())
    } else {
        NodeStorage::new(NodeId(0), workload.tables())
    };
    workload.load_node(&storage, 1);
    let latency = LatencyModel::new(LatencyConfig::zero());
    let fabric: Fabric<SwitchMessage> = Fabric::new(latency.clone());
    let mut config = EngineConfig::new(SystemMode::NoSwitch, CcScheme::NoWait, SwitchConfig::tiny());
    config.single_latch = single_latch;
    let shared = Arc::new(EngineShared {
        nodes: vec![Arc::new(storage)],
        latency,
        fabric,
        hot_index: HotIndexCell::new(HotSetIndex::empty()),
        mvcc: p4db_txn::MvccState::default(),
        health: p4db_txn::SwitchHealth::new(0, 1, p4db_txn::BreakerConfig::default()),
        config,
    });

    let stop = Arc::new(AtomicBool::new(false));
    // The measurement window opens only once every worker has finished its
    // setup (request-pool generation is not the system under test).
    let ready = Arc::new(std::sync::Barrier::new(workers as usize + 1));
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let workload = Arc::clone(workload);
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut worker = Worker::new(shared, NodeId(0), WorkerId(w));
                let ctx = WorkloadCtx::new(1, NodeId(0), 0.0);
                let mut rng = FastRng::new(0xBEEF ^ ((w as u64) << 8));
                // The engine, not the generator, is under test: pre-build a
                // seeded request pool and replay it round-robin.
                let pool: Vec<_> = (0..2048).map(|_| workload.generate(&ctx, &mut rng)).collect();
                let mut at = 0usize;
                let mut stats = WorkerStats::new();
                ready.wait();
                while !stop.load(Ordering::Relaxed) {
                    let req = &pool[at & 2047];
                    at += 1;
                    let started = Instant::now();
                    match worker.execute(req, &mut stats) {
                        Ok(outcome) => stats.record_commit(outcome.class, started.elapsed()),
                        // NO_WAIT conflicts on the (cold) hot set; the
                        // closed loop just moves on, like the real drivers.
                        Err(e) if e.is_abort() => {}
                        Err(e) => panic!("node-local bench: engine error {e}"),
                    }
                }
                stats
            })
        })
        .collect();
    ready.wait();
    std::thread::sleep(measure);
    stop.store(true, Ordering::Relaxed);
    let worker_stats: Vec<WorkerStats> =
        handles.into_iter().map(|h| h.join().expect("bench worker panicked")).collect();
    RunStats::from_workers(worker_stats.iter(), measure)
}

/// Throughput vs worker count of the node-local hot path, sharded vs the
/// seed's single latch, across all three workloads. The `YCSB-A all-cold
/// workers=8` point is the acceptance datapoint of the sharding work: its
/// speedup is floored by the CI gate ([`json::GateConfig`]).
pub fn fig_node_scaling(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Node scaling — single-node host-path throughput: sharded store + admission-time resolution vs the seed's \
         single-latch engine",
        &["Workload", "Workers", "Single-latch [txn/s]", "Sharded [txn/s]", "Speedup"],
    );
    let workloads: Vec<(&str, Arc<dyn Workload>)> = vec![
        // The gated arm: every access cold, so the storage path dominates.
        (
            "YCSB-A all-cold",
            ycsb_with(YcsbConfig { keys_per_node: 20_000, hot_txn_prob: 0.0, ..YcsbConfig::new(YcsbMix::A) }),
        ),
        ("SmallBank 8x5", smallbank(5)),
        ("TPC-C 4WH", tpcc(4)),
    ];
    let worker_sweep: Vec<u16> = if profile.full { vec![1, 2, 4, 8] } else { vec![2, 8] };
    // This figure carries a gated speedup, so it resists scheduler noise
    // harder than the others: a floor on the per-point measurement time, and
    // best-of-three per arm (interference from other processes only ever
    // lowers a closed-loop throughput, never raises it — extra samples only
    // tighten the estimate). Three samples instead of two since versioned
    // rows: the sharded arm now pays commit-time version installs the
    // single-latch baseline skips, which thinned the gate's headroom.
    let measure = profile.measure.max(Duration::from_millis(200));
    let best = |single_latch: bool, w: &Arc<dyn Workload>, workers: u16| {
        (0..3)
            .map(|_| measure_node_local(w, workers, single_latch, measure))
            .max_by(|a, b| a.throughput().total_cmp(&b.throughput()))
            .expect("non-empty sample set")
    };
    for (name, w) in workloads {
        for &workers in &worker_sweep {
            let base = best(true, &w, workers);
            let sharded = best(false, &w, workers);
            table.push_row(vec![
                name.to_string(),
                workers.to_string(),
                fmt_tps(base.throughput()),
                fmt_tps(sharded.throughput()),
                fmt_speedup(speedup(&sharded, &base)),
            ]);
            let params = format!("{name} workers={workers}");
            table.push_point(BenchPoint::from_run("fig_node_scaling", params, &sharded, Some(&base)));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Read mix (PR 9, not a paper figure): the lock-free snapshot read path.
// ---------------------------------------------------------------------------

/// Measures the node-local engine at a given whole-transaction read
/// fraction: `read_frac` of the pooled transactions are converted to
/// all-reads (inserts dropped — an insert's key has no pre-image to read),
/// and the `snapshot` arm additionally marks them read-only so they take
/// the lock-free snapshot path. The locking arm executes the *same* seeded
/// pool through 2PL, so the two arms differ only in the read path.
pub fn measure_read_mix(
    workload: &Arc<dyn Workload>,
    workers: u16,
    read_frac: f64,
    snapshot: bool,
    measure: Duration,
) -> RunStats {
    use p4db_txn::{OpKind, TxnOp};
    let storage = NodeStorage::new(NodeId(0), workload.tables());
    workload.load_node(&storage, 1);
    let latency = LatencyModel::new(LatencyConfig::zero());
    let fabric: Fabric<SwitchMessage> = Fabric::new(latency.clone());
    let config = EngineConfig::new(SystemMode::NoSwitch, CcScheme::NoWait, SwitchConfig::tiny());
    let shared = Arc::new(EngineShared {
        nodes: vec![Arc::new(storage)],
        latency,
        fabric,
        hot_index: HotIndexCell::new(HotSetIndex::empty()),
        mvcc: p4db_txn::MvccState::default(),
        health: p4db_txn::SwitchHealth::new(0, 1, p4db_txn::BreakerConfig::default()),
        config,
    });

    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(std::sync::Barrier::new(workers as usize + 1));
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let shared = Arc::clone(&shared);
            let workload = Arc::clone(workload);
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut worker = Worker::new(shared, NodeId(0), WorkerId(w));
                let ctx = WorkloadCtx::new(1, NodeId(0), 0.0);
                let mut rng = FastRng::new(0xF00D ^ ((w as u64) << 8));
                // Identical pools in both arms: the conversion draw happens
                // whether or not the snapshot flag is set.
                let pool: Vec<_> = (0..2048)
                    .map(|_| {
                        let mut req = workload.generate(&ctx, &mut rng);
                        if rng.gen_f64() < read_frac {
                            let reads: Vec<TxnOp> = req
                                .ops
                                .iter()
                                .filter(|op| !matches!(op.kind, OpKind::Insert(_)))
                                .map(|op| TxnOp::new(op.tuple, OpKind::Read, op.home))
                                .collect();
                            if !reads.is_empty() {
                                req.ops = reads;
                                if snapshot {
                                    req = req.into_read_only();
                                }
                            }
                        }
                        req
                    })
                    .collect();
                let mut at = 0usize;
                let mut stats = WorkerStats::new();
                ready.wait();
                while !stop.load(Ordering::Relaxed) {
                    let req = &pool[at & 2047];
                    at += 1;
                    let started = Instant::now();
                    match worker.execute(req, &mut stats) {
                        Ok(outcome) => stats.record_commit(outcome.class, started.elapsed()),
                        Err(e) if e.is_abort() => {}
                        Err(e) => panic!("read-mix bench: engine error {e}"),
                    }
                }
                stats
            })
        })
        .collect();
    ready.wait();
    std::thread::sleep(measure);
    stop.store(true, Ordering::Relaxed);
    let worker_stats: Vec<WorkerStats> =
        handles.into_iter().map(|h| h.join().expect("bench worker panicked")).collect();
    RunStats::from_workers(worker_stats.iter(), measure)
}

/// Throughput vs read fraction of the snapshot read path over 2PL on the
/// same pooled schedule (hot-skewed YCSB-A, host-only). The `95% reads`
/// datapoint is the acceptance bar of the versioned-rows work: read-mostly
/// traffic must be at least `min_read_mostly_speedup` faster lock-free than
/// through the lock table ([`json::GateConfig`]).
pub fn fig_read_mix(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Read mix — node-local throughput of the lock-free snapshot read path vs 2PL on the same pooled schedule \
         (YCSB-A, host-only)",
        &["Read fraction", "Workers", "2PL [txn/s]", "Snapshot [txn/s]", "Speedup"],
    );
    let w = ycsb_with(YcsbConfig { keys_per_node: 20_000, ..YcsbConfig::new(YcsbMix::A) });
    let fractions: Vec<u32> = if profile.full { vec![50, 80, 95] } else { vec![80, 95] };
    let workers = 4u16;
    // Carries a gated speedup: same noise-resistance as fig_node_scaling —
    // floored per-point measurement time, best-of-two per arm.
    let measure = profile.measure.max(Duration::from_millis(200));
    let best = |read_frac: f64, snapshot: bool| {
        let a = measure_read_mix(&w, workers, read_frac, snapshot, measure);
        let b = measure_read_mix(&w, workers, read_frac, snapshot, measure);
        if a.throughput() >= b.throughput() {
            a
        } else {
            b
        }
    };
    for pct in fractions {
        let frac = pct as f64 / 100.0;
        let locking = best(frac, false);
        let snap = best(frac, true);
        table.push_row(vec![
            format!("{pct}%"),
            workers.to_string(),
            fmt_tps(locking.throughput()),
            fmt_tps(snap.throughput()),
            fmt_speedup(speedup(&snap, &locking)),
        ]);
        let params = format!("YCSB-A {pct}% reads workers={workers}");
        table.push_point(BenchPoint::from_run("fig_read_mix", params, &snap, Some(&locking)));
    }
    table
}

// ---------------------------------------------------------------------------
// Switch scaling (PR 6, not a paper figure): multi-switch topologies.
// ---------------------------------------------------------------------------

/// Per-pass pipeline delay for the switch-scaling arms, in nanoseconds.
///
/// The slow-motion fabric profile keeps the switch pass negligible next to
/// the wire RTT (5µs vs ~555µs), which is the single-switch paper regime:
/// the pipeline forwards at line rate and is never the bottleneck. The
/// scaling figure asks the opposite question — what happens once the hot
/// load *saturates* one pipeline — so its arms raise the per-pass delay to
/// the same slow-motion scale as the fabric latencies. At 100µs/pass one
/// switch caps out near 10K hot txn/s while the closed-loop drivers demand
/// ~25K, so the switch count is the scarce resource being swept.
const SCALING_PASS_NS: u64 = 100_000;

/// Throughput vs switch count (1, 2, 4) at a fixed aggregate hot-set size
/// (hot-heavy SmallBank, 40 hot customers/node). All arms run the unbatched
/// hot path with the pipeline delay of `SCALING_PASS_NS` (100µs), so the 1-switch
/// arm is pipeline-saturated and adding switches adds usable capacity. The
/// maxcut assignment keeps each customer's savings/checking pair on one
/// switch, so only the two-customer transfers (`Amalgamate`/`SendPayment`
/// across the switch boundary) pay the cross-switch host fallback; the class
/// mix column makes that share visible next to the speedup. The `switches=2`
/// datapoint is the acceptance bar of the multi-switch work: its speedup
/// over the 1-switch arm is floored by the CI gate ([`json::GateConfig`]).
pub fn fig_switch_scaling(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Switch scaling — throughput vs switch count at a fixed aggregate hot-set size (SmallBank 4x40, saturated \
         pipeline)",
        &["Switches", "Throughput [txn/s]", "Class mix", "Speedup vs 1 switch"],
    );
    let w = smallbank(40);
    // Carries a gated speedup: same noise-resistance as fig_node_scaling —
    // floored per-point measurement time and best-of-two per arm.
    let floored = BenchProfile { measure: profile.measure.max(Duration::from_millis(200)), ..*profile };
    let run = |switches: u16| {
        let arm = || {
            measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, 0.2, &floored, |c| {
                c.num_switches = switches;
                c.batch_size = 1;
                c.switch.pass_latency_ns = SCALING_PASS_NS;
            })
        };
        let a = arm();
        let b = arm();
        if a.throughput() >= b.throughput() {
            a
        } else {
            b
        }
    };
    let mut baseline: Option<RunStats> = None;
    for switches in [1u16, 2, 4] {
        let stats = run(switches);
        let speedup_factor = baseline.as_ref().map(|b| speedup(&stats, b)).unwrap_or(1.0);
        table.push_row(vec![
            switches.to_string(),
            fmt_tps(stats.throughput()),
            fmt_class_mix(&stats),
            fmt_speedup(speedup_factor),
        ]);
        let params = format!("switches={switches}");
        table.push_point(BenchPoint::from_run("fig_switch_scaling", params, &stats, baseline.as_ref()));
        if baseline.is_none() {
            baseline = Some(stats);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Recovery time (PR 7, not a paper figure): checkpointed vs genesis restart.
// ---------------------------------------------------------------------------

/// Restart-time figure of the durability work: the same crashed node
/// recovered two ways — genesis replay (decode + replay the entire log of
/// every coordinator) vs checkpoint + tail (load the latest complete fuzzy
/// checkpoint, decode only the segments past each coordinator's start fence,
/// replay the suffix, write back shard-parallel). Traffic is grown until the
/// log dwarfs the table, which is the regime checkpoints exist for; the
/// `checkpointed vs genesis restart` datapoint's speedup is floored by the
/// CI gate ([`json::GateConfig::min_recovery_speedup`]).
pub fn fig_recovery(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Recovery — node restart time: genesis replay vs latest complete checkpoint + segment-tail replay \
         (SmallBank, single-partition)",
        &["Arm", "WAL records", "Replayed", "Restored rows", "Restart time [ms]", "Speedup"],
    );
    // A small table hammered by a long history: recovery work is replay- and
    // decode-bound, not table-scan-bound.
    let w: Arc<dyn Workload> = Arc::new(SmallBank::new(SmallBankConfig {
        customers_per_node: 2_000,
        hot_customers_per_node: 5,
        ..SmallBankConfig::default()
    }));
    let mut config = ClusterConfig::new(SystemMode::NoSwitch, CcScheme::NoWait);
    config.workers_per_node = 4;
    config.distributed_prob = 0.0;
    let cluster = Cluster::build(config, Arc::clone(&w));
    let node = NodeId(0);
    // Grow the log until the crashed node's own WAL holds enough records for
    // the genesis replay to take measurable time (bounded: a wedged cluster
    // must fail the figure, not hang it).
    let target = if profile.full { 120_000 } else { 40_000 };
    let slice = profile.measure.max(Duration::from_millis(100));
    for _ in 0..64 {
        if cluster.shared().node(node).wal().len() >= target {
            break;
        }
        cluster.run_for(slice);
    }
    assert!(cluster.quiesce_switch(Duration::from_secs(10)), "recovery figure: cluster failed to quiesce");

    // Best-of-two per arm: recovery is idempotent, and interference can only
    // ever slow a restart down.
    let time_restart = || {
        let timed = || {
            let start = Instant::now();
            let report = cluster.crash_and_recover_node(node).expect("recovery failed");
            (start.elapsed(), report)
        };
        let (ta, ra) = timed();
        let (tb, rb) = timed();
        if ta <= tb {
            (ta, ra)
        } else {
            (tb, rb)
        }
    };

    // Arm 1: genesis replay — no checkpoint exists yet.
    let (genesis_time, genesis) = time_restart();
    assert!(genesis.from_checkpoint.is_none(), "recovery figure: no checkpoint was taken yet");
    assert!(genesis.divergences.is_empty(), "genesis replay diverged: {:?}", genesis.divergences);

    // Arm 2: checkpoint, a short burst of post-checkpoint traffic (the
    // tail), then a checkpoint + tail restart.
    cluster.checkpoint_node(node).expect("checkpointing failed");
    cluster.run_for(Duration::from_millis(20));
    assert!(cluster.quiesce_switch(Duration::from_secs(10)), "recovery figure: cluster failed to quiesce");
    let (ckpt_time, ckpt) = time_restart();
    assert!(ckpt.from_checkpoint.is_some(), "recovery figure: restart did not use the checkpoint");
    assert!(ckpt.divergences.is_empty(), "checkpoint+tail replay diverged: {:?}", ckpt.divergences);

    let speedup = genesis_time.as_secs_f64() / ckpt_time.as_secs_f64().max(1e-9);
    let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    table.push_row(vec![
        "genesis replay".into(),
        genesis.wal_records.to_string(),
        genesis.tail_records.to_string(),
        genesis.restored_tuples.to_string(),
        ms(genesis_time),
        fmt_speedup(1.0),
    ]);
    table.push_row(vec![
        "checkpoint + tail".into(),
        ckpt.wal_records.to_string(),
        ckpt.tail_records.to_string(),
        ckpt.restored_tuples.to_string(),
        ms(ckpt_time),
        fmt_speedup(speedup),
    ]);
    // tps = genesis replay rate in records/s (stable across machines);
    // p50_us = the checkpointed restart's wall time.
    let replay_rate = genesis.tail_records as f64 / genesis_time.as_secs_f64().max(1e-9);
    table.push_point(BenchPoint::from_rates(
        "fig_recovery",
        json::RECOVERY_PARAMS,
        replay_rate,
        ckpt_time.as_secs_f64() * 1e6,
        speedup,
    ));
    table
}

// ---------------------------------------------------------------------------
// Outage figure: committed-throughput timeline across a switch blackhole.
// ---------------------------------------------------------------------------

/// Self-healing timeline: SmallBank traffic through a mid-run switch
/// blackhole with the circuit breaker enabled. The first windows absorb the
/// outage — switch timeouts trip the breaker and degraded mode moves hot
/// transactions onto the host 2PL path — then the supervisor probes the
/// healed switch, resolves the in-doubt ledger and re-admits the hot set,
/// and the final windows measure the recovered switch path. The datapoint's
/// `speedup` column carries min-window/max-window throughput: the fraction
/// of peak the cluster retains at its worst moment, floored by the CI gate
/// ([`json::GateConfig::min_degraded_floor_frac`]). Every window must commit
/// transactions — a zero window is a liveness failure, not a slow figure.
pub fn fig_outage(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Outage — committed throughput timeline across a switch blackhole (SmallBank, breaker + supervisor)",
        &["Window", "Phase", "Committed", "Throughput [txn/s]"],
    );
    let w = smallbank(50);
    let mut config = ClusterConfig::new(SystemMode::P4db, CcScheme::NoWait);
    config.workers_per_node = 4;
    config.distributed_prob = 0.0;
    // A quiet net plan (no probabilistic faults) carrying only the blackhole:
    // the switch goes silent mid-window-0 and heals itself after 120 swallowed
    // messages — which the supervisor's own heartbeat probes drive, so
    // recovery needs no outside intervention. The 4 ms switch timeout keeps
    // the trip inside one window even on the 25 ms CI smoke profile.
    let mut plan = FaultPlan::quiet(11);
    plan.switch_timeout = Duration::from_millis(4);
    plan.blackhole = Some(BlackholeFault { switch: 0, after_messages: 64, heal_after_drops: 120 });
    config.faults = Some(plan);
    config.breaker = BreakerConfig::enabled();
    let mut cluster = Cluster::build(config, Arc::clone(&w));
    let switch = SwitchId(0);

    let window = profile.measure.clamp(Duration::from_millis(25), Duration::from_millis(50));
    // Each window runs in 5 slices with a degrade check between slices: a
    // tripped switch is stood up in degraded mode (WAL-suffix replay into
    // host rows, hot demoted to 2PL) within ~window/5 of the trip, which is
    // what the supervisor's degrade pass does under live traffic at its
    // 2 ms probe cadence. Degrading only at window boundaries would leave a
    // long window mostly in fail-fast limbo and understate the floor.
    let run_window = |cluster: &Cluster| -> RunStats {
        let mut merged = WorkerStats::new();
        let mut wall = Duration::ZERO;
        for _ in 0..5 {
            let stats = cluster.run_for(window / 5);
            merged.merge(&stats.merged);
            wall += stats.wall_time;
            if cluster.health().is_open(switch) && !cluster.health().is_degraded(switch) {
                cluster.degrade_switch(switch).expect("outage figure: degrade failed");
            }
        }
        RunStats { merged, wall_time: wall }
    };
    let mut windows: Vec<(&'static str, RunStats)> = Vec::new();
    // Outage + floor windows: traffic runs while the blackhole swallows the
    // hot path.
    for _ in 0..3 {
        let phase = if cluster.health().is_degraded(switch) { "degraded floor" } else { "outage" };
        windows.push((phase, run_window(&cluster)));
    }
    // Probe → resolve → re-admit. The drivers are parked between windows, so
    // the supervisor can quiesce and re-admit as soon as its probe streak
    // closes the breaker.
    let report = cluster.supervise_until(|| true, Duration::from_secs(30)).expect("outage figure: supervisor failed");
    assert!(report.trips_seen >= 1, "outage figure: the blackhole never tripped the breaker");
    assert!(!report.deadline_forced, "outage figure: supervisor hit its deadline and force-healed the fault");
    assert!(report.recovered.contains(&switch), "outage figure: switch was never re-admitted");
    for _ in 0..2 {
        windows.push(("recovered", run_window(&cluster)));
    }
    assert!(!cluster.health().is_open(switch), "outage figure: breaker still open after recovery");
    assert_eq!(cluster.health().ledger_len(), 0, "outage figure: unresolved in-doubt transactions after recovery");

    let tps: Vec<f64> = windows.iter().map(|(_, stats)| stats.throughput()).collect();
    for (i, ((phase, stats), t)) in windows.iter().zip(&tps).enumerate() {
        assert!(
            stats.merged.committed_total() > 0,
            "outage figure: window {i} ({phase}) committed nothing — the throughput floor broke"
        );
        table.push_row(vec![i.to_string(), phase.to_string(), stats.merged.committed_total().to_string(), fmt_tps(*t)]);
    }
    let peak = tps.iter().cloned().fold(0.0f64, f64::max);
    let floor = tps.iter().cloned().fold(f64::INFINITY, f64::min);
    let floor_frac = floor / peak.max(1e-9);
    // tps = peak window throughput; p50_us = per-txn time at the floor
    // window; speedup = the gated floor fraction.
    table.push_point(BenchPoint::from_rates(
        "fig_outage",
        json::OUTAGE_PARAMS,
        peak,
        1e6 / floor.max(1e-9),
        floor_frac,
    ));
    table
}

// ---------------------------------------------------------------------------
// Figure 18a: latency breakdown for TPC-C.
// ---------------------------------------------------------------------------

pub fn fig18a_latency_breakdown(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 18a — per-transaction latency breakdown (TPC-C 8WH, high load)",
        &["System", "Lock acquisition", "Local access", "Remote access", "Switch txn", "Txn engine", "Total [µs]"],
    );
    let w = tpcc(8);
    for mode in [SystemMode::NoSwitch, SystemMode::P4db] {
        let stats = measure(&w, mode, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
        let breakdown = stats.phase_breakdown();
        let us =
            |p: Phase| breakdown.iter().find(|(ph, _)| *ph == p).map(|(_, d)| d.as_secs_f64() * 1e6).unwrap_or(0.0);
        let total: f64 = breakdown.iter().map(|(_, d)| d.as_secs_f64() * 1e6).sum();
        table.push_row(vec![
            mode.label().to_string(),
            format!("{:.0}µs", us(Phase::LockAcquisition)),
            format!("{:.0}µs", us(Phase::LocalAccess)),
            format!("{:.0}µs", us(Phase::RemoteAccess)),
            format!("{:.0}µs", us(Phase::SwitchTxn)),
            format!("{:.0}µs", us(Phase::TxnEngine)),
            format!("{total:.0}"),
        ]);
        table.push_point(BenchPoint::from_run("fig18a", mode.label(), &stats, None));
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 18b: existing optimizations for distributed/contended transactions.
// ---------------------------------------------------------------------------

pub fn fig18b_existing_optimizations(profile: &BenchProfile) -> FigureTable {
    let mut table = FigureTable::new(
        "Figure 18b — existing optimizations vs. P4DB (TPC-C 8WH)",
        &["Configuration", "Throughput [txn/s]", "Speedup vs Plain 2PL"],
    );
    let w = tpcc(8);
    // Plain 2PL/2PC with poor locality (80% distributed).
    let plain = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.8, profile, no_tweak);
    // + optimal partitioning: locality brings distributed transactions down
    //   to 20%.
    let opt_part = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.2, profile, no_tweak);
    // + Chiller-style contention-centric execution on top of the locality.
    let chiller = measure(&w, SystemMode::NoSwitch, CcScheme::NoWait, 4, 0.2, profile, |c| c.chiller = true);
    // + P4DB.
    let p4db = measure(&w, SystemMode::P4db, CcScheme::NoWait, 4, 0.2, profile, no_tweak);

    for (name, stats) in [("Plain 2PL", &plain), ("+Opt. Part.", &opt_part), ("+Chiller", &chiller), ("+P4DB", &p4db)] {
        table.push_row(vec![name.to_string(), fmt_tps(stats.throughput()), fmt_speedup(speedup(stats, &plain))]);
        table.push_point(BenchPoint::from_run("fig18b", name, stats, Some(&plain)));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile() -> BenchProfile {
        BenchProfile { measure: Duration::from_millis(60), full: false }
    }

    /// Ad-hoc profiling probe (not part of the suite): phase breakdown of
    /// the node-local hot path. Run with
    /// `cargo test --release -p p4db-bench --lib node_profile -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn node_profile_probe() {
        let workers: u16 = std::env::var("PROBE_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
        let w = ycsb_with(YcsbConfig { keys_per_node: 20_000, hot_txn_prob: 0.0, ..YcsbConfig::new(YcsbMix::A) });
        for single_latch in [true, false] {
            let stats = measure_node_local(&w, workers, single_latch, Duration::from_millis(500));
            println!(
                "single_latch={single_latch}: {:.0} tps, committed {}, aborted {}",
                stats.throughput(),
                stats.merged.committed_total(),
                stats.merged.aborts_total()
            );
            for (phase, d) in stats.phase_breakdown() {
                println!("  {:<18} {:>8.0} ns/txn", phase.label(), d.as_nanos());
            }
        }
    }

    #[test]
    fn fig01_produces_one_row_per_workload() {
        let t = fig01_headline(&quick_profile());
        assert_eq!(t.rows.len(), 3);
        assert!(t.to_markdown().contains("YCSB-A"));
    }

    #[test]
    fn fig15c_has_four_ablation_steps() {
        let t = fig15c_optimizations(&quick_profile());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "Unoptimized");
        assert_eq!(t.rows[3][0], "+Declustered");
    }
}
