//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Run with `cargo bench -p p4db-bench --bench figures`. Environment knobs:
//! `P4DB_MEASURE_MS` (per-point measurement time, default 250 ms),
//! `P4DB_FULL=1` (wider parameter sweeps) and `P4DB_BENCH_JSON` (output
//! path for the machine-readable datapoints, default `BENCH_10.json` at the
//! workspace root). Stdout is markdown; redirect it into a file to update
//! `EXPERIMENTS.md`. The figures that ran are additionally serialised as
//! `BenchPoint`s, merged by figure into the JSON file, which the CI
//! regression gate diffs against `BENCH_baseline.json`.

use p4db_bench::*;

type FigureFn = fn(&BenchProfile) -> p4db_core::FigureTable;

fn main() {
    let profile = BenchProfile::from_env();
    println!("# P4DB figure reproduction (measure = {:?}, full = {})\n", profile.measure, profile.full);

    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig01", fig01_headline),
        ("fig11_contention", fig11_ycsb_contention),
        ("fig11_distributed", fig11_ycsb_distributed),
        ("fig12", fig12_hot_cold_breakdown),
        ("fig13", fig13_smallbank),
        ("fig14", fig14_tpcc),
        ("fig15ab", fig15ab_hot_ratio),
        ("fig15c", fig15c_optimizations),
        ("fig16", fig16_data_layout),
        ("fig17", fig17_capacity),
        ("fig18a", fig18a_latency_breakdown),
        ("fig18b", fig18b_existing_optimizations),
        ("fig_node_scaling", fig_node_scaling),
        ("fig_read_mix", fig_read_mix),
        ("fig_switch_scaling", fig_switch_scaling),
        ("fig_recovery", fig_recovery),
        ("fig_outage", fig_outage),
    ];

    // Allow running a subset: `cargo bench --bench figures -- fig13 fig14`.
    let filter: Vec<String> = std::env::args().skip(1).filter(|a| a.starts_with("fig")).collect();
    let mut points = Vec::new();
    for (name, f) in figures {
        if !filter.is_empty() && !filter.iter().any(|want| name.starts_with(want.as_str())) {
            continue;
        }
        eprintln!("[figures] running {name} ...");
        let table = f(&profile);
        table.print();
        points.extend(table.points);
    }
    if !points.is_empty() {
        let path = p4db_bench::json::output_path();
        p4db_bench::json::write_merged(&path, &points).expect("writing BENCH json");
        eprintln!("[figures] wrote {} datapoints to {}", points.len(), path.display());
    }
}
