//! Supporting microbenchmarks (not figures from the paper): raw component
//! throughput of the switch pipeline (batched and unbatched), the host lock
//! manager, the max-cut heuristic and the WAL (single appends and group
//! commit). Used to sanity-check that the substrates are far from being the
//! bottleneck of the figure reproduction, and to pin the batched-vs-unbatched
//! hot-path speedup as a machine-readable datapoint in `BENCH_9.json`
//! (figure `micro`), which the CI gate tripwires.
//!
//! Knobs: `P4DB_MICRO_QUICK=1` shrinks iteration counts ~10× (the CI smoke
//! profile); `P4DB_BENCH_JSON` overrides the output path.

use p4db_common::rand_util::FastRng;
use p4db_common::{CcScheme, LatencyConfig, NodeId, SwitchId, TableId, TupleId, TxnId, Value, WorkerId};
use p4db_core::BenchPoint;
use p4db_layout::{max_cut, AccessGraph, TraceAccess, TxnTrace};
use p4db_net::{BatchRecvOutcome, EndpointId, Fabric, LatencyModel, RecvOutcome};
use p4db_storage::{encode_segment, LockMode, LockTable, LogRecord, NodeStorage, Wal};
use p4db_switch::{
    start_switch, Instruction, RegisterMemory, RegisterSlot, SwitchConfig, SwitchMessage, SwitchTxn, TxnHeader,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Iteration count, shrunk by `P4DB_MICRO_QUICK=1` for the CI smoke profile.
fn scaled(iters: u64) -> u64 {
    if std::env::var("P4DB_MICRO_QUICK").as_deref() == Ok("1") {
        (iters / 10).max(1_000)
    } else {
        iters
    }
}

/// Runs `f` `iters` times, prints the rate, and returns it (op/s).
fn bench(name: &str, iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    let elapsed = start.elapsed();
    let per_op = elapsed.as_nanos() as f64 / iters as f64;
    let rate = iters as f64 / elapsed.as_secs_f64();
    println!("{name:<48} {iters:>9} iters  {per_op:>10.0} ns/op  {rate:>12.0} op/s");
    rate
}

/// Open-loop throughput of the switch hot path at a given batching degree:
/// a window of 8-op single-pass transactions is kept in flight; sends use
/// frames and receives drain batches when `batch_size > 1`, exactly like the
/// engine's pipelined hot path. Returns committed transactions per second.
fn switch_hot_path_rate(batch_size: u16, total: u64) -> f64 {
    let config = SwitchConfig { pass_latency_ns: 0, batch_size, ..SwitchConfig::tofino_defaults() };
    let fabric: Fabric<SwitchMessage> = Fabric::new(LatencyModel::new(LatencyConfig::zero()));
    let memory = Arc::new(RegisterMemory::new(config));
    let handle = start_switch(config, memory, fabric.clone());
    let ep = EndpointId::Worker(NodeId(0), WorkerId(0));
    let mailbox = fabric.register(ep);

    let txn = |i: u64| {
        let instructions: Vec<_> =
            (0..8u8).map(|s| Instruction::add(RegisterSlot::new(s, (i % 4) as u8, (i % 1024) as u32), 1)).collect();
        SwitchTxn::new(TxnHeader::new(ep, i), instructions)
    };
    let window = 128u64.min(total);
    let send_chunk = |from: u64, count: u64| {
        if batch_size > 1 {
            let frame: Vec<SwitchMessage> = (from..from + count).map(|i| SwitchMessage::Txn(txn(i))).collect();
            assert!(fabric.send_frame(ep, EndpointId::Switch(SwitchId(0)), frame), "switch ingress gone");
        } else {
            for i in from..from + count {
                assert!(
                    fabric.send(ep, EndpointId::Switch(SwitchId(0)), SwitchMessage::Txn(txn(i))),
                    "switch ingress gone"
                );
            }
        }
    };

    let start = Instant::now();
    let mut sent = window;
    let mut done = 0u64;
    send_chunk(0, window);
    while done < total {
        let received = match mailbox.recv_batch_timeout(Duration::from_secs(5), window as usize) {
            BatchRecvOutcome::Frame(envs) => {
                envs.iter().filter(|e| matches!(e.payload, SwitchMessage::TxnReply(_))).count() as u64
            }
            BatchRecvOutcome::TimedOut => {
                panic!("switch hot path bench (batch={batch_size}): no reply within 5s — switch wedged")
            }
            BatchRecvOutcome::Disconnected => {
                panic!("switch hot path bench (batch={batch_size}): switch died (mailbox disconnected)")
            }
        };
        done += received;
        let refill = received.min(total - sent);
        if refill > 0 {
            send_chunk(sent, refill);
            sent += refill;
        }
    }
    let rate = total as f64 / start.elapsed().as_secs_f64();
    handle.shutdown();
    rate
}

/// The batching tripwire: the same open-loop hot path, unbatched vs. frames
/// of 16. The resulting speedup is the `micro` datapoint the CI gate checks.
fn switch_hot_path_batched(points: &mut Vec<BenchPoint>) {
    let total = scaled(40_000);
    let unbatched = switch_hot_path_rate(1, total);
    let batched = switch_hot_path_rate(16, total);
    let speedup = batched / unbatched;
    println!(
        "{:<48} {total:>9} txns   unbatched {unbatched:>10.0} txn/s   batch=16 {batched:>10.0} txn/s   {speedup:.2}x",
        "switch hot path: batched vs unbatched"
    );
    points.push(BenchPoint::from_rates("micro", p4db_bench::json::BATCHING_PARAMS, batched, 1e6 / batched, speedup));
}

fn switch_pipeline_throughput(points: &mut Vec<BenchPoint>) {
    let config = SwitchConfig { pass_latency_ns: 0, ..SwitchConfig::tofino_defaults() };
    let fabric: Fabric<SwitchMessage> = Fabric::new(LatencyModel::new(LatencyConfig::zero()));
    let memory = Arc::new(RegisterMemory::new(config));
    let handle = start_switch(config, memory, fabric.clone());
    let ep = EndpointId::Worker(NodeId(0), WorkerId(0));
    let mailbox = fabric.register(ep);
    let rate = bench("switch pipeline: 8-op single-pass txns", scaled(50_000), |i| {
        let instructions: Vec<_> =
            (0..8u8).map(|s| Instruction::add(RegisterSlot::new(s, (i % 4) as u8, (i % 1024) as u32), 1)).collect();
        let txn = SwitchTxn::new(TxnHeader::new(ep, i), instructions);
        fabric.send(ep, EndpointId::Switch(SwitchId(0)), SwitchMessage::Txn(txn));
        loop {
            // A dead or wedged switch must fail the bench loudly, not spin
            // the full timeout once per iteration.
            match mailbox.recv_timeout(Duration::from_secs(5)) {
                RecvOutcome::Msg(env) => {
                    if matches!(env.payload, SwitchMessage::TxnReply(_)) {
                        break;
                    }
                }
                RecvOutcome::TimedOut => {
                    panic!("switch pipeline bench: no reply within 5s — switch wedged or overloaded")
                }
                RecvOutcome::Disconnected => {
                    panic!("switch pipeline bench: switch died mid-run (mailbox disconnected)")
                }
            }
        }
    });
    points.push(BenchPoint::from_rates("micro", "switch pipeline closed-loop", rate, 1e9 / rate / 1e3, 1.0));
    handle.shutdown();
}

/// The admission-resolution tripwire: resolving a tuple's lock *and* row
/// handle with one hash (`NodeStorage::admit`-style, grouped batch release)
/// vs the seed's shape — acquire, then a separate directory + map lookup,
/// then a per-tuple release, each hashing again. The resulting speedup is
/// the `micro` admission datapoint recorded in the BENCH json trajectory.
fn admission_resolution(points: &mut Vec<BenchPoint>) {
    const ROWS: u64 = 100_000;
    let total = scaled(300_000);
    let load = |storage: &NodeStorage| {
        storage.table(TableId(0)).unwrap().bulk_load((0..ROWS).map(|k| (k, Value::scalar(k))));
    };
    let sharded = NodeStorage::new(NodeId(0), [TableId(0)]);
    let seed = NodeStorage::seed_single_latch(NodeId(0), [TableId(0)]);
    load(&sharded);
    load(&seed);
    // Pseudorandom key walk (Knuth multiplicative) over the loaded rows.
    let key = |i: u64| (i.wrapping_mul(2654435761)) % ROWS;

    // Best-of-two per arm: the per-op delta is tens of nanoseconds, so a
    // single descheduling burst on a small machine can invert the ratio.
    let best = |rate_a: f64, rate_b: f64| rate_a.max(rate_b);
    let run_legacy = || {
        bench("admission: seed lock + lookup + release per op", total, |i| {
            let txn = TxnId::compose(i as u32, NodeId(0), WorkerId(0));
            let tuple = TupleId::new(TableId(0), key(i));
            seed.locks().acquire(txn, tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
            let _row = seed.table(TableId(0)).unwrap().get_or_err(tuple.key).unwrap();
            seed.locks().release(txn, tuple);
        })
    };
    let run_admit = || {
        bench("admission: one-hash resolve + batch release", total, |i| {
            let txn = TxnId::compose(i as u32, NodeId(0), WorkerId(0));
            let tuple = TupleId::new(TableId(0), key(i));
            let hash = tuple.mix();
            sharded.locks().acquire_prehashed(hash, txn, tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
            let _row = sharded.table(TableId(0)).unwrap().get_prehashed(hash, tuple.key).unwrap();
            sharded.locks().release_batch(txn, &[(hash, tuple)]);
        })
    };
    let legacy = best(run_legacy(), run_legacy());
    let admit = best(run_admit(), run_admit());
    let speedup = admit / legacy;
    println!(
        "{:<48} {total:>9} ops    seed {legacy:>12.0} op/s   one-hash {admit:>12.0} op/s   {speedup:.2}x",
        "admission resolution: one-hash vs seed"
    );
    points.push(BenchPoint::from_rates("micro", p4db_bench::json::ADMISSION_PARAMS, admit, 1e6 / admit, speedup));
}

fn lock_table_throughput(points: &mut Vec<BenchPoint>) {
    let table = LockTable::new();
    let rate = bench("host lock table: acquire+release", scaled(200_000), |i| {
        let txn = TxnId::compose(i as u32, NodeId(0), WorkerId(0));
        let tuple = TupleId::new(TableId(0), i % 1024);
        table.acquire(txn, tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        table.release(txn, tuple);
    });
    points.push(BenchPoint::from_rates("micro", "host lock table", rate, 1e6 / rate, 1.0));
}

fn maxcut_scaling() {
    let mut rng = FastRng::new(7);
    for n in [100usize, 1_000, 4_000] {
        let traces: Vec<TxnTrace> = (0..n * 4)
            .map(|_| {
                TxnTrace::new(
                    (0..4).map(|_| TraceAccess::read(TupleId::new(TableId(0), rng.gen_range(n as u64)))).collect(),
                )
            })
            .collect();
        let graph = AccessGraph::from_traces(&traces);
        let start = Instant::now();
        let partitioning = max_cut(&graph, 40, n.div_ceil(40) + 1, 1);
        println!(
            "max-cut heuristic: {n:>5} tuples -> cut weight {:>8}, intra {:>6}, {:>8.1} ms",
            partitioning.cut_weight,
            partitioning.intra_weight,
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}

fn wal_throughput(points: &mut Vec<BenchPoint>) {
    let total = scaled(500_000);
    let wal = Wal::new();
    let single = bench("WAL append: commit records", total, |i| {
        wal.append(LogRecord::Commit { txn: TxnId::compose(i as u32, NodeId(0), WorkerId(0)) });
    });
    points.push(BenchPoint::from_rates("micro", "wal append", single, 1e6 / single, 1.0));
    // Release the first log before measuring the second: ~150 MB of live
    // records would otherwise skew the group run's allocator behaviour (the
    // comparison is copy-bound, not lock-bound — see the Wal module docs).
    drop(wal);

    // Group commit: the same records, 16 per log write (one lock acquisition
    // per group). The rate is in records/s so the ratio to single appends is
    // directly visible; uncontended it is dominated by the record copy and
    // hovers around 1x — the amortisation pays off on contended multi-worker
    // logs and in the executor's pipelined hot path, not here.
    let group_wal = Wal::new();
    let grouped_rate = bench("WAL append_group: commit records x16", total / 16, |g| {
        let batch: Vec<LogRecord> = (0..16u32)
            .map(|k| LogRecord::Commit { txn: TxnId::compose(g as u32 * 16 + k, NodeId(0), WorkerId(0)) })
            .collect();
        group_wal.append_group(batch);
    }) * 16.0;
    points.push(BenchPoint::from_rates(
        "micro",
        "wal append_group x16",
        grouped_rate,
        1e6 / grouped_rate,
        grouped_rate / single,
    ));
}

/// The group-commit encode comparison: the same 512-record group rendered
/// through the segmented binary codec (what a segment seal or group flush
/// writes) vs the versioned text format (the compatibility arm). Both arms
/// re-encode the full group per iteration. Recorded as the `micro`
/// group-encode datapoint in the BENCH json trajectory (not gated — the
/// recovery floor covers the end-to-end durability path).
fn wal_group_encode(points: &mut Vec<BenchPoint>) {
    const GROUP: usize = 512;
    let records: Vec<LogRecord> = (0..GROUP as u32)
        .map(|i| {
            let txn = TxnId::compose(i, NodeId(0), WorkerId(0));
            match i % 3 {
                0 => LogRecord::ColdWrite {
                    txn,
                    tuple: TupleId::new(TableId(0), i as u64),
                    before: Value::scalar(i as u64),
                    after: Value::scalar(i as u64 + 1),
                },
                1 => LogRecord::Commit { txn },
                _ => LogRecord::Abort { txn },
            }
        })
        .collect();
    let text_wal = Wal::new();
    for r in &records {
        text_wal.append(r.clone());
    }
    let iters = scaled(20_000);
    let binary = bench("WAL group encode: binary segment x512", iters, |_| {
        std::hint::black_box(encode_segment(0, &records));
    }) * GROUP as f64;
    let text = bench("WAL group encode: text format x512", iters, |_| {
        std::hint::black_box(text_wal.serialize());
    }) * GROUP as f64;
    let speedup = binary / text;
    println!(
        "{:<48} {GROUP:>9} recs   text {text:>12.0} rec/s   binary {binary:>12.0} rec/s   {speedup:.2}x",
        "WAL group encode: binary vs text"
    );
    points.push(BenchPoint::from_rates("micro", p4db_bench::json::GROUP_ENCODE_PARAMS, binary, 1e6 / binary, speedup));
}

fn main() {
    println!("# P4DB component microbenchmarks\n");
    let mut points = Vec::new();
    switch_pipeline_throughput(&mut points);
    switch_hot_path_batched(&mut points);
    admission_resolution(&mut points);
    lock_table_throughput(&mut points);
    maxcut_scaling();
    wal_throughput(&mut points);
    wal_group_encode(&mut points);

    let path = p4db_bench::json::output_path();
    p4db_bench::json::write_merged(&path, &points).expect("writing BENCH json");
    println!("\n[micro] wrote {} datapoints to {}", points.len(), path.display());
}
