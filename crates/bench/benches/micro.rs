//! Supporting microbenchmarks (not figures from the paper): raw component
//! throughput of the switch pipeline, the host lock manager, the max-cut
//! heuristic and the WAL. Used to sanity-check that the substrates are far
//! from being the bottleneck of the figure reproduction.

use p4db_common::rand_util::FastRng;
use p4db_common::{CcScheme, LatencyConfig, NodeId, TableId, TupleId, TxnId, WorkerId};
use p4db_layout::{max_cut, AccessGraph, TraceAccess, TxnTrace};
use p4db_net::{EndpointId, Fabric, LatencyModel};
use p4db_storage::{LockMode, LockTable, LogRecord, Wal};
use p4db_switch::{
    start_switch, Instruction, RegisterMemory, RegisterSlot, SwitchConfig, SwitchMessage, SwitchTxn, TxnHeader,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench(name: &str, iters: u64, mut f: impl FnMut(u64)) {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    let elapsed = start.elapsed();
    let per_op = elapsed.as_nanos() as f64 / iters as f64;
    let rate = iters as f64 / elapsed.as_secs_f64();
    println!("{name:<40} {iters:>9} iters  {per_op:>10.0} ns/op  {rate:>12.0} op/s");
}

fn switch_pipeline_throughput() {
    let config = SwitchConfig { pass_latency_ns: 0, ..SwitchConfig::tofino_defaults() };
    let fabric: Fabric<SwitchMessage> = Fabric::new(LatencyModel::new(LatencyConfig::zero()));
    let memory = Arc::new(RegisterMemory::new(config));
    let handle = start_switch(config, memory, fabric.clone());
    let ep = EndpointId::Worker(NodeId(0), WorkerId(0));
    let mailbox = fabric.register(ep);
    bench("switch pipeline: 8-op single-pass txns", 50_000, |i| {
        let instructions: Vec<_> =
            (0..8u8).map(|s| Instruction::add(RegisterSlot::new(s, (i % 4) as u8, (i % 1024) as u32), 1)).collect();
        let txn = SwitchTxn::new(TxnHeader::new(ep, i), instructions);
        fabric.send(ep, EndpointId::Switch, SwitchMessage::Txn(txn));
        loop {
            if let Some(env) = mailbox.recv_timeout(Duration::from_secs(5)).msg() {
                if matches!(env.payload, SwitchMessage::TxnReply(_)) {
                    break;
                }
            }
        }
    });
    handle.shutdown();
}

fn lock_table_throughput() {
    let table = LockTable::new();
    bench("host lock table: acquire+release", 200_000, |i| {
        let txn = TxnId::compose(i as u32, NodeId(0), WorkerId(0));
        let tuple = TupleId::new(TableId(0), i % 1024);
        table.acquire(txn, tuple, LockMode::Exclusive, CcScheme::NoWait).unwrap();
        table.release(txn, tuple);
    });
}

fn maxcut_scaling() {
    let mut rng = FastRng::new(7);
    for n in [100usize, 1_000, 4_000] {
        let traces: Vec<TxnTrace> = (0..n * 4)
            .map(|_| {
                TxnTrace::new(
                    (0..4).map(|_| TraceAccess::read(TupleId::new(TableId(0), rng.gen_range(n as u64)))).collect(),
                )
            })
            .collect();
        let graph = AccessGraph::from_traces(&traces);
        let start = Instant::now();
        let partitioning = max_cut(&graph, 40, n.div_ceil(40) + 1, 1);
        println!(
            "max-cut heuristic: {n:>5} tuples -> cut weight {:>8}, intra {:>6}, {:>8.1} ms",
            partitioning.cut_weight,
            partitioning.intra_weight,
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}

fn wal_throughput() {
    let wal = Wal::new();
    bench("WAL append: commit records", 500_000, |i| {
        wal.append(LogRecord::Commit { txn: TxnId::compose(i as u32, NodeId(0), WorkerId(0)) });
    });
}

fn main() {
    println!("# P4DB component microbenchmarks\n");
    switch_pipeline_throughput();
    lock_table_throughput();
    maxcut_scaling();
    wal_throughput();
}
