//! Switch transaction instructions.
//!
//! A switch transaction is a network packet carrying a header plus a variable
//! number of *instructions* (Fig 6 in the paper). Each instruction addresses
//! exactly one register slot (a stage / register-array / index triple) and
//! performs a single stateful ALU operation on it — the granularity the
//! Tofino's `RegisterAction`s provide: one read-modify-write per register per
//! packet pass.

/// Address of a single register cell on the switch.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegisterSlot {
    /// MAU stage index (0-based, increasing along the pipeline).
    pub stage: u8,
    /// Register array within the stage.
    pub array: u8,
    /// Cell index within the register array.
    pub index: u32,
}

impl RegisterSlot {
    pub const fn new(stage: u8, array: u8, index: u32) -> Self {
        Self { stage, array, index }
    }
}

/// The stateful ALU operation an instruction performs on its register cell.
///
/// These correspond to what a single Tofino `RegisterAction` can express:
/// a read, an unconditional write, fixed-point add variants, and the
/// *constrained write* of §5.1 (a predicate-guarded update), which is how
/// P4DB implements simple integrity constraints such as SmallBank's
/// non-negative balances without aborts.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpCode {
    /// Return the current value; leave the register unchanged.
    Read,
    /// Overwrite the register with the operand; return the new value.
    Write,
    /// Add the operand (two's-complement) to the register; return the new
    /// value.
    Add,
    /// Add the operand to the register but return the *previous* value
    /// (TPC-C's `d_next_o_id++`).
    FetchAdd,
    /// Constrained write: subtract the operand only if the result stays
    /// non-negative (interpreting the register as a signed integer). Returns
    /// the (possibly unchanged) value and a success flag.
    CondSub,
    /// Constrained write: overwrite with the operand only if the operand is
    /// greater than the current value (used for high-watermark style
    /// constraints). Returns the resulting value and whether it was applied.
    WriteIfGreater,
}

impl OpCode {
    /// Whether this opcode may modify the register.
    pub fn is_write(self) -> bool {
        !matches!(self, OpCode::Read)
    }

    /// Stable wire name, used by the WAL text encoding.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Read => "read",
            OpCode::Write => "write",
            OpCode::Add => "add",
            OpCode::FetchAdd => "fetchadd",
            OpCode::CondSub => "condsub",
            OpCode::WriteIfGreater => "writeifgreater",
        }
    }

    /// Inverse of [`OpCode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "read" => OpCode::Read,
            "write" => OpCode::Write,
            "add" => OpCode::Add,
            "fetchadd" => OpCode::FetchAdd,
            "condsub" => OpCode::CondSub,
            "writeifgreater" => OpCode::WriteIfGreater,
            _ => return None,
        })
    }
}

/// One operation of a switch transaction.
///
/// The operand is normally an immediate carried in the packet, but it can
/// also be *forwarded* from the result of an earlier instruction of the same
/// transaction (`operand_from`). This is how P4DB implements read-dependent
/// writes on the switch (Table 1): the earlier stage writes its result into
/// packet metadata and a later stage consumes it — e.g. SmallBank's
/// `Amalgamate` drains account A and credits the drained amount to account B.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Instruction {
    pub slot: RegisterSlot,
    pub op: OpCode,
    /// Immediate operand (ignored when `operand_from` is set).
    pub operand: u64,
    /// Index of an earlier instruction in the same transaction whose result
    /// value replaces the immediate operand.
    pub operand_from: Option<u8>,
}

impl Instruction {
    pub const fn new(slot: RegisterSlot, op: OpCode, operand: u64) -> Self {
        Self { slot, op, operand, operand_from: None }
    }

    pub const fn read(slot: RegisterSlot) -> Self {
        Self::new(slot, OpCode::Read, 0)
    }

    pub const fn write(slot: RegisterSlot, value: u64) -> Self {
        Self::new(slot, OpCode::Write, value)
    }

    pub const fn add(slot: RegisterSlot, delta: i64) -> Self {
        Self::new(slot, OpCode::Add, delta as u64)
    }

    pub const fn fetch_add(slot: RegisterSlot, delta: i64) -> Self {
        Self::new(slot, OpCode::FetchAdd, delta as u64)
    }

    pub const fn cond_sub(slot: RegisterSlot, amount: u64) -> Self {
        Self::new(slot, OpCode::CondSub, amount)
    }

    /// An operation whose operand is the result of instruction `src` of the
    /// same transaction (read-dependent write).
    ///
    /// The dependency imposes an access-order constraint: `src` must execute
    /// in an earlier stage (or an earlier pass), which is exactly what the
    /// declustered layout tries to honour.
    pub const fn with_operand_from(slot: RegisterSlot, op: OpCode, src: u8) -> Self {
        Self { slot, op, operand: 0, operand_from: Some(src) }
    }
}

/// Result of executing one instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InstrResult {
    /// Value reported back to the issuing node (semantics depend on the
    /// opcode, see [`OpCode`]).
    pub value: u64,
    /// Whether a constrained write's predicate held. Always `true` for
    /// unconditional opcodes.
    pub applied: bool,
}

/// Applies `op` with `operand` to `cell`, returning the new cell contents and
/// the reported result. Pure function so that the ALU semantics can be tested
/// exhaustively and reused by the recovery replayer.
pub fn apply_op(cell: u64, op: OpCode, operand: u64) -> (u64, InstrResult) {
    match op {
        OpCode::Read => (cell, InstrResult { value: cell, applied: true }),
        OpCode::Write => (operand, InstrResult { value: operand, applied: true }),
        OpCode::Add => {
            let new = cell.wrapping_add(operand);
            (new, InstrResult { value: new, applied: true })
        }
        OpCode::FetchAdd => {
            let new = cell.wrapping_add(operand);
            (new, InstrResult { value: cell, applied: true })
        }
        OpCode::CondSub => {
            // The amount is an unsigned quantity; amounts beyond i64::MAX can
            // never satisfy the predicate against a signed balance.
            let current = cell as i64;
            if operand <= i64::MAX as u64 && current >= operand as i64 {
                let new = current - operand as i64;
                (new as u64, InstrResult { value: new as u64, applied: true })
            } else {
                (cell, InstrResult { value: cell, applied: false })
            }
        }
        OpCode::WriteIfGreater => {
            if operand > cell {
                (operand, InstrResult { value: operand, applied: true })
            } else {
                (cell, InstrResult { value: cell, applied: false })
            }
        }
    }
}

/// Splits an instruction list into pipeline passes.
///
/// The Tofino memory model imposes two rules per pass (§2.3, §4.1):
///
/// 1. register accesses must follow the stage order of the pipeline, i.e.
///    stages must be non-decreasing within a pass, and
/// 2. a register array can be accessed at most once per pass.
///
/// This function greedily packs the longest legal prefix into each pass, the
/// exact behaviour of the switch data plane program; the client uses it to
/// set the `is_multipass` header flag, the switch uses it to drive
/// recirculation.
pub fn plan_passes(instructions: &[Instruction]) -> Vec<std::ops::Range<usize>> {
    let mut passes = Vec::new();
    let mut start = 0usize;
    while start < instructions.len() {
        let mut end = start;
        let mut last_stage: i32 = -1;
        // (stage, array) pairs touched in this pass; transactions touch a
        // handful of registers, so a linear scan beats a hash set.
        let mut touched: Vec<(u8, u8)> = Vec::new();
        while end < instructions.len() {
            let slot = instructions[end].slot;
            let key = (slot.stage, slot.array);
            if (slot.stage as i32) < last_stage || touched.contains(&key) {
                break;
            }
            touched.push(key);
            last_stage = slot.stage as i32;
            end += 1;
        }
        passes.push(start..end);
        start = end;
    }
    passes
}

/// Convenience: `true` iff the instruction list fits in a single pipeline
/// pass.
pub fn is_single_pass(instructions: &[Instruction]) -> bool {
    plan_passes(instructions).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(stage: u8, array: u8, index: u32) -> RegisterSlot {
        RegisterSlot::new(stage, array, index)
    }

    #[test]
    fn alu_read_leaves_cell_untouched() {
        let (cell, res) = apply_op(42, OpCode::Read, 999);
        assert_eq!(cell, 42);
        assert_eq!(res.value, 42);
        assert!(res.applied);
    }

    #[test]
    fn alu_write_overwrites() {
        let (cell, res) = apply_op(42, OpCode::Write, 7);
        assert_eq!(cell, 7);
        assert_eq!(res.value, 7);
    }

    #[test]
    fn alu_add_is_twos_complement() {
        let (cell, res) = apply_op(10, OpCode::Add, (-3i64) as u64);
        assert_eq!(cell, 7);
        assert_eq!(res.value, 7);
    }

    #[test]
    fn alu_fetch_add_returns_old_value() {
        let (cell, res) = apply_op(100, OpCode::FetchAdd, 1);
        assert_eq!(cell, 101);
        assert_eq!(res.value, 100);
    }

    #[test]
    fn alu_cond_sub_blocks_overdraft() {
        let (cell, res) = apply_op(50, OpCode::CondSub, 80);
        assert_eq!(cell, 50);
        assert!(!res.applied);
        let (cell, res) = apply_op(50, OpCode::CondSub, 20);
        assert_eq!(cell, 30);
        assert!(res.applied);
        assert_eq!(res.value, 30);
    }

    #[test]
    fn alu_write_if_greater() {
        let (cell, res) = apply_op(10, OpCode::WriteIfGreater, 5);
        assert_eq!(cell, 10);
        assert!(!res.applied);
        let (cell, res) = apply_op(10, OpCode::WriteIfGreater, 15);
        assert_eq!(cell, 15);
        assert!(res.applied);
    }

    #[test]
    fn single_pass_when_stages_increase() {
        let instrs = vec![
            Instruction::read(slot(0, 0, 1)),
            Instruction::add(slot(1, 0, 2), 5),
            Instruction::write(slot(2, 1, 3), 9),
        ];
        assert!(is_single_pass(&instrs));
        assert_eq!(plan_passes(&instrs), vec![0..3]);
    }

    #[test]
    fn same_stage_different_arrays_is_single_pass() {
        let instrs =
            vec![Instruction::read(slot(1, 0, 1)), Instruction::read(slot(1, 1, 2)), Instruction::read(slot(1, 2, 3))];
        assert!(is_single_pass(&instrs));
    }

    #[test]
    fn descending_stage_order_forces_second_pass() {
        // Figure 6: the last operations revisit registers of earlier stages.
        let instrs = vec![
            Instruction::read(slot(0, 0, 1)),
            Instruction::write(slot(1, 0, 2), 4),
            Instruction::add(slot(2, 0, 3), 1),
            Instruction::read(slot(0, 0, 4)),
            Instruction::add(slot(1, 0, 5), 2),
        ];
        let passes = plan_passes(&instrs);
        assert_eq!(passes, vec![0..3, 3..5]);
        assert!(!is_single_pass(&instrs));
    }

    #[test]
    fn repeated_access_to_same_register_array_forces_second_pass() {
        // Two operations on the same (stage, array) cannot share a pass even
        // if the stage order is fine.
        let instrs = vec![Instruction::read(slot(3, 0, 1)), Instruction::write(slot(3, 0, 1), 10)];
        let passes = plan_passes(&instrs);
        assert_eq!(passes.len(), 2);
    }

    #[test]
    fn empty_instruction_list_has_no_passes() {
        assert!(plan_passes(&[]).is_empty());
        assert!(is_single_pass(&[]));
    }

    #[test]
    fn pathological_ordering_needs_one_pass_per_instruction() {
        // Strictly decreasing stages: every instruction violates the order
        // w.r.t. its predecessor.
        let instrs: Vec<_> = (0..5u8).rev().map(|s| Instruction::read(slot(s, 0, 0))).collect();
        assert_eq!(plan_passes(&instrs).len(), 5);
    }
}
