//! The switch data-plane engine: pipelined, abort-free transaction execution.
//!
//! One network packet is one transaction (§4.1). The engine consumes packets
//! from its ingress mailbox and executes them **strictly one at a time**, so
//! the resulting schedule is — by construction — the serial order in which
//! packets were admitted to the pipeline. This is exactly the isolation
//! argument of §5.1: on a PISA switch there is one packet per MAU stage per
//! cycle and packets are never reordered, so the pipelined execution is
//! equivalent to a serial execution.
//!
//! Multi-pass transactions (§5.2) acquire pipeline locks on admission, are
//! recirculated between passes (through the dedicated lock-owner port when
//! fast recirculation is enabled, §5.3), and release their locks when their
//! last pass completes. Transactions whose admission is blocked by a held
//! lock are recirculated through the waiting port, incrementing the
//! `nb_recircs` counter in their header.

use crate::config::SwitchConfig;
use crate::instruction::{plan_passes, InstrResult};
use crate::lock_manager::SwitchLockTable;
use crate::locks::{LockMask, PipelineLocks};
use crate::memory::RegisterMemory;
use crate::packet::{IntentStatusReply, LockReply, ProbeReply, SwitchMessage, SwitchTxn, TxnReply, WarmDecision};
use crate::stats::{SwitchStats, SwitchStatsSnapshot};
use p4db_common::simtime::wait_for;
use p4db_common::sync::unpoison;
use p4db_common::{GlobalTxnId, SwitchId, TxnId};
use p4db_net::{BatchRecvOutcome, EndpointId, Fabric, FrameBatcher, Mailbox};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A packet currently inside the switch (being processed or recirculating).
struct Inflight {
    txn: SwitchTxn,
    passes: Vec<Range<usize>>,
    next_pass: usize,
    results: Vec<InstrResult>,
    /// Pipeline locks this packet holds (non-empty only for admitted
    /// multi-pass packets).
    holds: LockMask,
}

impl Inflight {
    fn new(txn: SwitchTxn) -> Self {
        let passes = plan_passes(&txn.instructions);
        let results = Vec::with_capacity(txn.instructions.len());
        Inflight { txn, passes, next_pass: 0, results, holds: LockMask::NONE }
    }

    fn is_multipass(&self) -> bool {
        self.passes.len() > 1
    }
}

/// Handle to a running switch. Dropping it shuts the pipeline thread down.
pub struct SwitchHandle {
    stats: Arc<SwitchStats>,
    memory: Arc<RegisterMemory>,
    gid_counter: Arc<AtomicU64>,
    audit: Arc<Mutex<Vec<(TxnId, GlobalTxnId)>>>,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl SwitchHandle {
    /// Snapshot of the data-plane statistics.
    pub fn stats(&self) -> SwitchStatsSnapshot {
        self.stats.snapshot()
    }

    /// The register memory shared with the control plane.
    pub fn memory(&self) -> &Arc<RegisterMemory> {
        &self.memory
    }

    /// Number of switch transactions executed so far (== the next GID to be
    /// assigned).
    pub fn executed_count(&self) -> u64 {
        self.gid_counter.load(Ordering::Relaxed)
    }

    /// The data-plane audit log: `(issuing TxnId, assigned GID)` of every
    /// executed transaction, in serial execution order. Empty unless
    /// [`SwitchConfig::audit_data_plane`] is enabled. This is the ground
    /// truth the chaos invariant checker replays against — it exists only in
    /// the simulator, never in the real data plane.
    pub fn audit_log(&self) -> Vec<(TxnId, GlobalTxnId)> {
        unpoison(self.audit.lock()).clone()
    }

    /// Number of audit-log entries, without cloning the log.
    pub fn audit_len(&self) -> usize {
        unpoison(self.audit.lock()).len()
    }

    /// Stops the pipeline thread and waits for it to exit. Queued packets
    /// that have not started execution are dropped.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SwitchHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Starts the switch data plane for switch 0 — the single-switch topology.
/// See [`start_switch_with_id`] for multi-switch clusters.
pub fn start_switch(config: SwitchConfig, memory: Arc<RegisterMemory>, fabric: Fabric<SwitchMessage>) -> SwitchHandle {
    start_switch_with_id(SwitchId(0), config, memory, fabric)
}

/// Starts one switch data plane: registers its [`EndpointId::Switch`]
/// endpoint on the fabric and spawns the pipeline thread. A multi-switch
/// topology calls this once per switch, each with its own register memory;
/// the engines share nothing but the fabric.
///
/// # Panics
/// Panics if this switch's endpoint is already registered on the fabric.
pub fn start_switch_with_id(
    id: SwitchId,
    config: SwitchConfig,
    memory: Arc<RegisterMemory>,
    fabric: Fabric<SwitchMessage>,
) -> SwitchHandle {
    config.validate().expect("invalid switch configuration");
    assert_eq!(memory.config(), &config, "switch engine and memory must share a configuration");
    let endpoint = EndpointId::Switch(id);
    let ingress = fabric.register(endpoint);
    let stats = Arc::new(SwitchStats::default());
    let gid_counter = Arc::new(AtomicU64::new(0));
    let audit = Arc::new(Mutex::new(Vec::new()));
    let shutdown = Arc::new(AtomicBool::new(false));

    let engine = Engine {
        config,
        endpoint,
        memory: Arc::clone(&memory),
        fabric,
        ingress,
        stats: Arc::clone(&stats),
        gid_counter: Arc::clone(&gid_counter),
        audit: Arc::clone(&audit),
        shutdown: Arc::clone(&shutdown),
        locks: PipelineLocks::new(),
        lock_table: SwitchLockTable::new(),
        owner_queue: VecDeque::new(),
        waiting_queue: VecDeque::new(),
        reply_batcher: FrameBatcher::new(config.batch_size as usize, Duration::from_micros(config.flush_us)),
        audit_buf: Vec::new(),
        frame_pipelined: 0,
    };
    let join = std::thread::Builder::new()
        .name(format!("p4db-switch-pipeline-{}", id.0))
        .spawn(move || engine.run())
        .expect("failed to spawn switch pipeline thread");

    SwitchHandle { stats, memory, gid_counter, audit, shutdown, join: Some(join) }
}

struct Engine {
    config: SwitchConfig,
    /// This engine's own fabric endpoint (`EndpointId::Switch(id)`), the
    /// source address of everything it sends.
    endpoint: EndpointId,
    memory: Arc<RegisterMemory>,
    fabric: Fabric<SwitchMessage>,
    ingress: Mailbox<SwitchMessage>,
    stats: Arc<SwitchStats>,
    gid_counter: Arc<AtomicU64>,
    audit: Arc<Mutex<Vec<(TxnId, GlobalTxnId)>>>,
    shutdown: Arc<AtomicBool>,
    locks: PipelineLocks,
    lock_table: SwitchLockTable,
    /// Recirculation port reserved for packets that own a pipeline lock
    /// (§5.3 fast recirculating). Only used when `fast_recirculation` is on.
    owner_queue: VecDeque<Inflight>,
    /// Recirculation port for packets waiting to be admitted (and, when fast
    /// recirculation is disabled, also for lock owners between passes).
    waiting_queue: VecDeque<Inflight>,
    /// Egress frame batching for [`TxnReply`]s: replies accumulate per origin
    /// and leave as one fabric frame when full, when the flush deadline
    /// expires, or — at the latest — when the ingress queue runs dry and the
    /// engine is about to block. Pass-through when `batch_size <= 1`.
    reply_batcher: FrameBatcher<SwitchMessage>,
    /// Audit entries of the current quantum, appended to the shared audit log
    /// in one lock acquisition per flush (order preserved).
    audit_buf: Vec<(TxnId, GlobalTxnId)>,
    /// Single-pass packets executed in the current ingress frame: they are
    /// pipelined back-to-back (§4.1), so the per-pass pipeline latency is
    /// paid once per frame, not once per packet.
    frame_pipelined: u32,
}

impl Engine {
    fn run(mut self) {
        let idle_wait = Duration::from_micros(200);
        let batch = self.config.batch_size.max(1) as usize;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }

            // 1. Fast path: a lock owner recirculating between passes has the
            //    shortest queue and therefore the lowest waiting time (§5.3).
            if let Some(pkt) = self.owner_queue.pop_front() {
                self.execute_pass(pkt);
                self.end_frame();
                self.flush_if_due();
                continue;
            }

            // 2. Waiting port: rotate until an admissible packet is found.
            //    Every rotation of a blocked packet is one recirculation.
            let mut admitted = false;
            for _ in 0..self.waiting_queue.len() {
                let mut pkt = match self.waiting_queue.pop_front() {
                    Some(p) => p,
                    None => break,
                };
                if self.try_admit(&mut pkt) {
                    self.execute_pass(pkt);
                    admitted = true;
                    break;
                } else {
                    pkt.txn.header.nb_recircs += 1;
                    SwitchStats::bump(&self.stats.recirc_waiting);
                    self.waiting_queue.push_back(pkt);
                }
            }
            if admitted {
                self.end_frame();
                self.flush_if_due();
                continue;
            }

            // 3. Ingress: pull the next frame off the wire — up to
            //    `batch_size` packets in one channel operation. While a burst
            //    lasts, the engine never blocks and partial reply frames wait
            //    (bounded by the flush deadline) so they can fill; once the
            //    queue runs dry, everything pending is flushed *before*
            //    blocking, so an idle switch never sits on a reply. A timeout
            //    just loops back around; a disconnect means the cluster is
            //    being torn down and the shutdown flag will be observed
            //    shortly.
            let frame = self.ingress.drain_batch(batch);
            if !frame.is_empty() {
                for env in frame {
                    self.handle_ingress(env.payload);
                }
                self.end_frame();
                self.flush_if_due();
                continue;
            }
            self.flush_pending();
            if let BatchRecvOutcome::Frame(envs) = self.ingress.recv_batch_timeout(idle_wait, batch) {
                for env in envs {
                    self.handle_ingress(env.payload);
                }
                self.end_frame();
                self.flush_if_due();
            }
        }
        self.flush_pending();
    }

    /// Ends one ingress frame: the frame's single-pass packets traversed the
    /// pipeline back-to-back, so their pass latency is imposed once here.
    fn end_frame(&mut self) {
        if self.frame_pipelined > 0 {
            if self.config.pass_latency_ns > 0 {
                wait_for(Duration::from_nanos(self.config.pass_latency_ns));
            }
            self.frame_pipelined = 0;
        }
    }

    /// Flushes buffered replies and audit entries if the oldest buffered
    /// reply has exceeded the flush deadline.
    fn flush_if_due(&mut self) {
        if !self.reply_batcher.is_empty() && self.reply_batcher.deadline_expired(Instant::now()) {
            self.flush_pending();
        }
    }

    /// Flushes everything pending: audit entries (one lock acquisition) and
    /// every partially filled reply frame. No-op in unbatched mode, where
    /// nothing is ever buffered.
    fn flush_pending(&mut self) {
        if !self.audit_buf.is_empty() {
            unpoison(self.audit.lock()).append(&mut self.audit_buf);
        }
        for (dst, frame) in self.reply_batcher.flush_all() {
            self.fabric.send_frame_no_latency(self.endpoint, dst, frame);
        }
    }

    /// Admission check at the first MAU stage (§5.2): multi-pass packets try
    /// to acquire their pipeline locks; single-pass packets only require that
    /// the locks covering their stages are currently free. Packets that
    /// already hold locks (possible only when fast recirculation is disabled
    /// and owners share the waiting port) are always admissible.
    fn try_admit(&mut self, pkt: &mut Inflight) -> bool {
        if !pkt.holds.is_empty() {
            return true;
        }
        let demand = pkt.txn.header.locks;
        if pkt.txn.header.is_multipass || pkt.is_multipass() {
            if self.locks.try_acquire(demand) {
                pkt.holds = demand;
                true
            } else {
                false
            }
        } else {
            self.locks.is_free(demand)
        }
    }

    /// Executes the packet's next pipeline pass and either recirculates it or
    /// completes it.
    fn execute_pass(&mut self, mut pkt: Inflight) {
        let range = pkt.passes[pkt.next_pass].clone();
        for idx in range {
            let instr = &pkt.txn.instructions[idx];
            // Read-dependent write: the operand comes from the result of an
            // earlier instruction, carried in the packet metadata across
            // stages (and across passes, since metadata survives
            // recirculation).
            let operand = match instr.operand_from {
                Some(src) if (src as usize) < pkt.results.len() => pkt.results[src as usize].value,
                Some(_) => instr.operand, // malformed forward reference: fall back to the immediate
                None => instr.operand,
            };
            let result = self.memory.execute_resolved(instr, operand);
            pkt.results.push(result);
        }
        SwitchStats::bump(&self.stats.passes);
        if self.config.batch_size > 1 && pkt.passes.len() <= 1 {
            // Batched mode: single-pass packets of one ingress frame ride the
            // pipeline back-to-back, so the frame pays the pass latency once
            // (in `end_frame`). Recirculating multi-pass packets still pay
            // per pass — recirculation is a fresh pipeline traversal.
            self.frame_pipelined += 1;
        } else if self.config.pass_latency_ns > 0 {
            wait_for(Duration::from_nanos(self.config.pass_latency_ns));
        }
        pkt.next_pass += 1;

        if pkt.next_pass < pkt.passes.len() {
            // Needs another pass: recirculate. Lock owners use the dedicated
            // port when fast recirculation is enabled.
            pkt.txn.header.nb_recircs += 1;
            if self.config.fast_recirculation {
                SwitchStats::bump(&self.stats.recirc_owner);
                self.owner_queue.push_back(pkt);
            } else {
                SwitchStats::bump(&self.stats.recirc_waiting);
                self.waiting_queue.push_back(pkt);
            }
        } else {
            self.complete(pkt);
        }
    }

    /// Completes a packet: assigns the GID, releases pipeline locks, replies
    /// to the issuing worker, and multicasts the warm-transaction decision if
    /// requested.
    fn complete(&mut self, pkt: Inflight) {
        let batched = self.config.batch_size > 1;
        let gid = GlobalTxnId(self.gid_counter.fetch_add(1, Ordering::Relaxed));
        if self.config.audit_data_plane {
            if batched {
                // One audit-lock acquisition per flush, not per transaction;
                // the buffer preserves the serial execution order.
                self.audit_buf.push((pkt.txn.header.txn_id, gid));
            } else {
                unpoison(self.audit.lock()).push((pkt.txn.header.txn_id, gid));
            }
        }
        if !pkt.holds.is_empty() {
            self.locks.release(pkt.holds);
        }
        SwitchStats::bump(&self.stats.txns_executed);
        if pkt.passes.len() <= 1 {
            SwitchStats::bump(&self.stats.single_pass);
        } else {
            SwitchStats::bump(&self.stats.multi_pass);
        }

        let header = pkt.txn.header;
        let reply = TxnReply { token: header.token, gid, results: pkt.results, recirculations: header.nb_recircs };
        if batched {
            if let Some((dst, frame)) = self.reply_batcher.push(header.origin, SwitchMessage::TxnReply(reply)) {
                // Audit entries always reach the shared log before their
                // replies become visible, exactly like the unbatched path
                // (one lock acquisition per full frame keeps the
                // amortisation).
                if !self.audit_buf.is_empty() {
                    unpoison(self.audit.lock()).append(&mut self.audit_buf);
                }
                self.fabric.send_frame_no_latency(self.endpoint, dst, frame);
            }
        } else {
            self.fabric.send_no_latency(self.endpoint, header.origin, SwitchMessage::TxnReply(reply));
        }

        if header.multicast_decision {
            SwitchStats::bump(&self.stats.multicasts);
            self.fabric.multicast_to_nodes(
                self.endpoint,
                SwitchMessage::WarmDecision(WarmDecision { token: header.token, gid, commit: true }),
            );
        }
    }

    fn handle_ingress(&mut self, msg: SwitchMessage) {
        match msg {
            SwitchMessage::Txn(txn) => {
                let mut pkt = Inflight::new(txn);
                if pkt.passes.is_empty() {
                    // A transaction with no instructions completes trivially
                    // (still gets a GID so recovery bookkeeping stays simple).
                    self.complete(pkt);
                    return;
                }
                if self.try_admit(&mut pkt) {
                    self.execute_pass(pkt);
                } else {
                    pkt.txn.header.nb_recircs += 1;
                    SwitchStats::bump(&self.stats.recirc_waiting);
                    self.waiting_queue.push_back(pkt);
                }
            }
            SwitchMessage::LockRequest(req) => {
                SwitchStats::bump(&self.stats.lm_requests);
                let granted = self.lock_table.try_acquire(req.lock_id, req.exclusive);
                if !granted {
                    SwitchStats::bump(&self.stats.lm_denied);
                }
                self.fabric.send_no_latency(
                    self.endpoint,
                    req.origin,
                    SwitchMessage::LockReply(LockReply { token: req.token, granted }),
                );
            }
            SwitchMessage::LockRelease(rel) => {
                self.lock_table.release(rel.lock_id, rel.exclusive);
            }
            SwitchMessage::ProbeRequest(req) => {
                // A heartbeat is one pipeline pass that touches no registers:
                // the reply itself is the proof of life, the executed count a
                // coarse progress indicator for the supervisor.
                let executed = self.gid_counter.load(Ordering::Relaxed);
                self.fabric.send_no_latency(
                    self.endpoint,
                    req.origin,
                    SwitchMessage::ProbeReply(ProbeReply { token: req.token, executed }),
                );
            }
            SwitchMessage::IntentStatusRequest(req) => {
                // Definitive answer from the audit log: has this intent been
                // executed? Scan the buffered (not yet flushed) entries too so
                // a batched execution is never reported as missing.
                let gid = self
                    .audit_buf
                    .iter()
                    .rev()
                    .chain(unpoison(self.audit.lock()).iter().rev())
                    .find(|(txn, _)| *txn == req.txn)
                    .map(|(_, gid)| *gid);
                self.fabric.send_no_latency(
                    self.endpoint,
                    req.origin,
                    SwitchMessage::IntentStatusReply(IntentStatusReply {
                        token: req.token,
                        txn: req.txn,
                        executed: gid.is_some(),
                        gid,
                    }),
                );
            }
            // Replies and decisions are egress-only; receiving one here means
            // a client misaddressed a message. Ignore rather than crash the
            // data plane.
            SwitchMessage::TxnReply(_)
            | SwitchMessage::LockReply(_)
            | SwitchMessage::WarmDecision(_)
            | SwitchMessage::ProbeReply(_)
            | SwitchMessage::IntentStatusReply(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{Instruction, OpCode, RegisterSlot};
    use crate::locks::locks_for_stages;
    use crate::packet::TxnHeader;
    use p4db_common::{LatencyConfig, NodeId, WorkerId};
    use p4db_net::LatencyModel;

    /// These tests run a single-switch topology: switch 0 everywhere.
    const SW: EndpointId = EndpointId::Switch(SwitchId(0));

    struct TestRig {
        fabric: Fabric<SwitchMessage>,
        handle: SwitchHandle,
        worker: Mailbox<SwitchMessage>,
        worker_ep: EndpointId,
    }

    fn rig(config: SwitchConfig) -> TestRig {
        let fabric = Fabric::new(LatencyModel::new(LatencyConfig::zero()));
        let memory = Arc::new(RegisterMemory::new(config));
        let handle = start_switch(config, memory, fabric.clone());
        let worker_ep = EndpointId::Worker(NodeId(0), WorkerId(0));
        let worker = fabric.register(worker_ep);
        TestRig { fabric, handle, worker, worker_ep }
    }

    fn send_and_wait(rig: &TestRig, txn: SwitchTxn) -> TxnReply {
        rig.fabric.send(rig.worker_ep, SW, SwitchMessage::Txn(txn));
        match rig.worker.recv_timeout(Duration::from_secs(10)).msg().expect("switch reply").payload {
            SwitchMessage::TxnReply(r) => r,
            other => panic!("unexpected message {other:?}"),
        }
    }

    fn slot(stage: u8, array: u8, index: u32) -> RegisterSlot {
        RegisterSlot::new(stage, array, index)
    }

    #[test]
    fn single_pass_txn_executes_and_replies() {
        let rig = rig(SwitchConfig::tiny());
        rig.handle.memory().write(slot(0, 0, 1), 100);
        let txn = SwitchTxn::new(
            TxnHeader::new(rig.worker_ep, 42),
            vec![
                Instruction::read(slot(0, 0, 1)),
                Instruction::add(slot(1, 0, 2), 5),
                Instruction::new(slot(2, 0, 3), OpCode::Write, 9),
            ],
        );
        let reply = send_and_wait(&rig, txn);
        assert_eq!(reply.token, 42);
        assert_eq!(reply.results.len(), 3);
        assert_eq!(reply.results[0].value, 100);
        assert_eq!(reply.results[1].value, 5);
        assert_eq!(reply.results[2].value, 9);
        assert_eq!(reply.recirculations, 0);
        assert_eq!(rig.handle.memory().read(slot(1, 0, 2)), 5);
        let stats = rig.handle.stats();
        assert_eq!(stats.txns_executed, 1);
        assert_eq!(stats.single_pass, 1);
        assert_eq!(stats.multi_pass, 0);
    }

    #[test]
    fn multipass_txn_recirculates_and_stays_consistent() {
        let config = SwitchConfig::tiny();
        let rig = rig(config);
        rig.handle.memory().write(slot(2, 0, 7), 50);
        // Read stage 2 then write stage 0: violates stage order, needs 2
        // passes.
        let instructions = vec![Instruction::read(slot(2, 0, 7)), Instruction::add(slot(0, 0, 3), 50)];
        let mut header = TxnHeader::new(rig.worker_ep, 1);
        header.is_multipass = true;
        header.locks = locks_for_stages([2u8, 0u8], &config);
        let reply = send_and_wait(&rig, SwitchTxn::new(header, instructions));
        assert_eq!(reply.results.len(), 2);
        assert_eq!(reply.results[0].value, 50);
        assert_eq!(reply.results[1].value, 50);
        assert!(reply.recirculations >= 1);
        let stats = rig.handle.stats();
        assert_eq!(stats.multi_pass, 1);
        assert!(stats.passes >= 2);
        assert!(stats.recirc_owner >= 1);
    }

    #[test]
    fn read_dependent_write_forwards_operand_across_stages() {
        // SmallBank Amalgamate: drain account A (stage 0) and credit the
        // drained amount to account B (stage 1).
        let rig = rig(SwitchConfig::tiny());
        let a = slot(0, 0, 1);
        let b = slot(1, 0, 2);
        rig.handle.memory().write(a, 120);
        rig.handle.memory().write(b, 30);
        let instructions = vec![
            // Read A's balance, then zero it: FetchAdd with the negated
            // balance is not expressible without knowing the balance, so the
            // workload uses Read followed by a dependent CondSub in a later
            // pass — here we exercise the simpler one-pass variant:
            Instruction::read(a),
            Instruction::with_operand_from(b, OpCode::Add, 0),
        ];
        let reply = send_and_wait(&rig, SwitchTxn::new(TxnHeader::new(rig.worker_ep, 3), instructions));
        assert_eq!(reply.results[0].value, 120);
        assert_eq!(reply.results[1].value, 150, "B must be credited with A's balance");
        assert_eq!(rig.handle.memory().read(b), 150);
    }

    #[test]
    fn operand_forwarding_works_across_passes() {
        // Dependent write targeting an *earlier* stage: needs a second pass,
        // and the forwarded value must survive recirculation.
        let config = SwitchConfig::tiny();
        let rig = rig(config);
        let src = slot(2, 0, 1);
        let dst = slot(0, 0, 2);
        rig.handle.memory().write(src, 77);
        let instructions = vec![Instruction::read(src), Instruction::with_operand_from(dst, OpCode::Write, 0)];
        let mut header = TxnHeader::new(rig.worker_ep, 9);
        header.is_multipass = true;
        header.locks = locks_for_stages([2u8, 0u8], &config);
        let reply = send_and_wait(&rig, SwitchTxn::new(header, instructions));
        assert!(reply.recirculations >= 1);
        assert_eq!(rig.handle.memory().read(dst), 77);
    }

    #[test]
    fn gids_are_dense_and_ordered() {
        let rig = rig(SwitchConfig::tiny());
        let mut gids = Vec::new();
        for i in 0..20u64 {
            let txn = SwitchTxn::new(TxnHeader::new(rig.worker_ep, i), vec![Instruction::add(slot(0, 0, 0), 1)]);
            gids.push(send_and_wait(&rig, txn).gid.0);
        }
        // One client sending synchronously: GIDs must be exactly 0..20 in
        // order (serial execution order == send order).
        assert_eq!(gids, (0..20).collect::<Vec<_>>());
        assert_eq!(rig.handle.memory().read(slot(0, 0, 0)), 20);
        assert_eq!(rig.handle.executed_count(), 20);
    }

    #[test]
    fn empty_txn_completes_with_gid() {
        let rig = rig(SwitchConfig::tiny());
        let reply = send_and_wait(&rig, SwitchTxn::new(TxnHeader::new(rig.worker_ep, 5), vec![]));
        assert_eq!(reply.results.len(), 0);
        assert_eq!(reply.gid.0, 0);
    }

    #[test]
    fn probe_replies_with_progress_counter() {
        let rig = rig(SwitchConfig::tiny());
        for i in 0..3u64 {
            let txn = SwitchTxn::new(TxnHeader::new(rig.worker_ep, i), vec![Instruction::add(slot(0, 0, 0), 1)]);
            send_and_wait(&rig, txn);
        }
        rig.fabric.send(
            rig.worker_ep,
            SW,
            SwitchMessage::ProbeRequest(crate::packet::ProbeRequest { origin: rig.worker_ep, token: 99 }),
        );
        match rig.worker.recv_timeout(Duration::from_secs(10)).msg().expect("probe reply").payload {
            SwitchMessage::ProbeReply(r) => {
                assert_eq!(r.token, 99);
                assert_eq!(r.executed, 3);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn intent_status_answers_from_the_audit_log() {
        let rig = rig(SwitchConfig::tiny());
        let executed_txn = TxnId::compose(7, NodeId(0), WorkerId(0));
        let mut header = TxnHeader::new(rig.worker_ep, 1);
        header.txn_id = executed_txn;
        send_and_wait(&rig, SwitchTxn::new(header, vec![Instruction::add(slot(0, 0, 0), 5)]));

        let status = |txn: TxnId| {
            rig.fabric.send(
                rig.worker_ep,
                SW,
                SwitchMessage::IntentStatusRequest(crate::packet::IntentStatusRequest {
                    origin: rig.worker_ep,
                    token: txn.0,
                    txn,
                }),
            );
            match rig.worker.recv_timeout(Duration::from_secs(10)).msg().expect("status reply").payload {
                SwitchMessage::IntentStatusReply(r) => r,
                other => panic!("unexpected message {other:?}"),
            }
        };

        let hit = status(executed_txn);
        assert!(hit.executed, "executed intent must be found in the audit log");
        assert_eq!(hit.txn, executed_txn);
        assert_eq!(hit.gid, Some(GlobalTxnId(0)));

        let never_sent = TxnId::compose(8, NodeId(0), WorkerId(0));
        let miss = status(never_sent);
        assert!(!miss.executed, "a lost (never executed) intent must be reported as missing");
        assert_eq!(miss.gid, None);
    }

    #[test]
    fn warm_decision_is_multicast_to_nodes() {
        let rig = rig(SwitchConfig::tiny());
        let node_mb = rig.fabric.register(EndpointId::Node(NodeId(0)));
        let mut header = TxnHeader::new(rig.worker_ep, 77);
        header.multicast_decision = true;
        let reply = send_and_wait(&rig, SwitchTxn::new(header, vec![Instruction::add(slot(0, 0, 0), 1)]));
        let decision = node_mb.recv_timeout(Duration::from_secs(5)).msg().expect("multicast");
        match decision.payload {
            SwitchMessage::WarmDecision(d) => {
                assert_eq!(d.token, 77);
                assert_eq!(d.gid, reply.gid);
                assert!(d.commit);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rig.handle.stats().multicasts, 1);
    }

    #[test]
    fn lock_manager_requests_are_served() {
        let rig = rig(SwitchConfig::tiny());
        let req =
            |token, lock_id, exclusive| crate::packet::LockRequest { origin: rig.worker_ep, token, lock_id, exclusive };
        rig.fabric.send(rig.worker_ep, SW, SwitchMessage::LockRequest(req(1, 99, true)));
        let granted = match rig.worker.recv_timeout(Duration::from_secs(5)).msg().unwrap().payload {
            SwitchMessage::LockReply(r) => r.granted,
            other => panic!("unexpected {other:?}"),
        };
        assert!(granted);
        rig.fabric.send(rig.worker_ep, SW, SwitchMessage::LockRequest(req(2, 99, true)));
        let granted = match rig.worker.recv_timeout(Duration::from_secs(5)).msg().unwrap().payload {
            SwitchMessage::LockReply(r) => r.granted,
            other => panic!("unexpected {other:?}"),
        };
        assert!(!granted, "conflicting exclusive lock must be denied");
        rig.fabric.send(
            rig.worker_ep,
            SW,
            SwitchMessage::LockRelease(crate::packet::LockRelease { lock_id: 99, exclusive: true }),
        );
        // After the release a new request succeeds.
        rig.fabric.send(rig.worker_ep, SW, SwitchMessage::LockRequest(req(3, 99, false)));
        let granted = match rig.worker.recv_timeout(Duration::from_secs(5)).msg().unwrap().payload {
            SwitchMessage::LockReply(r) => r.granted,
            other => panic!("unexpected {other:?}"),
        };
        assert!(granted);
        let stats = rig.handle.stats();
        assert_eq!(stats.lm_requests, 3);
        assert_eq!(stats.lm_denied, 1);
    }

    #[test]
    fn batched_engine_preserves_serial_order_and_audit() {
        // Same assertions as the unbatched GID test, but with frame batching
        // on: a synchronous client must still see dense in-order GIDs, and
        // the audit log must record the intra-batch serial order.
        let config = SwitchConfig { batch_size: 16, ..SwitchConfig::tiny() };
        let rig = rig(config);
        let mut gids = Vec::new();
        for i in 0..20u64 {
            let mut header = TxnHeader::new(rig.worker_ep, i);
            header.txn_id = p4db_common::TxnId(i + 1);
            let txn = SwitchTxn::new(header, vec![Instruction::add(slot(0, 0, 0), 1)]);
            gids.push(send_and_wait(&rig, txn).gid.0);
        }
        assert_eq!(gids, (0..20).collect::<Vec<_>>());
        assert_eq!(rig.handle.memory().read(slot(0, 0, 0)), 20);
        // Audit entries flushed (engine idle after the last reply) in serial
        // order, one per executed transaction.
        let audit = rig.handle.audit_log();
        assert_eq!(audit.len(), 20);
        assert!(audit.windows(2).all(|w| w[0].1 .0 + 1 == w[1].1 .0), "audit must be in GID order");
    }

    #[test]
    fn batched_engine_coalesces_replies_under_open_loop_load() {
        // Open loop: push a burst of transactions, then collect every reply.
        // The replies arrive as frames (multiple envelopes drained per
        // channel operation), all tokens come back exactly once.
        let config = SwitchConfig { batch_size: 8, ..SwitchConfig::tiny() };
        let rig = rig(config);
        let burst = 64u64;
        for i in 0..burst {
            let txn = SwitchTxn::new(TxnHeader::new(rig.worker_ep, i), vec![Instruction::add(slot(0, 0, 1), 1)]);
            rig.fabric.send(rig.worker_ep, SW, SwitchMessage::Txn(txn));
        }
        let mut tokens = Vec::new();
        while tokens.len() < burst as usize {
            match rig.worker.recv_batch_timeout(Duration::from_secs(10), 64) {
                p4db_net::BatchRecvOutcome::Frame(envs) => {
                    for env in envs {
                        match env.payload {
                            SwitchMessage::TxnReply(r) => tokens.push(r.token),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }
                other => panic!("burst replies missing: {other:?}"),
            }
        }
        tokens.sort_unstable();
        assert_eq!(tokens, (0..burst).collect::<Vec<_>>());
        assert_eq!(rig.handle.memory().read(slot(0, 0, 1)), burst);
        assert_eq!(rig.handle.stats().txns_executed, burst);
    }

    #[test]
    fn batched_engine_still_recirculates_multipass_txns() {
        let config = SwitchConfig { batch_size: 8, ..SwitchConfig::tiny() };
        let rig = rig(config);
        rig.handle.memory().write(slot(2, 0, 7), 50);
        let instructions = vec![Instruction::read(slot(2, 0, 7)), Instruction::add(slot(0, 0, 3), 50)];
        let mut header = TxnHeader::new(rig.worker_ep, 1);
        header.is_multipass = true;
        header.locks = locks_for_stages([2u8, 0u8], &config);
        let reply = send_and_wait(&rig, SwitchTxn::new(header, instructions));
        assert_eq!(reply.results.len(), 2);
        assert!(reply.recirculations >= 1);
        assert_eq!(rig.handle.stats().multi_pass, 1);
    }

    #[test]
    fn concurrent_clients_preserve_register_consistency() {
        // Many clients hammer Add(+1) on the same register; the final value
        // must equal the number of transactions (abort-free, lost-update-free
        // execution) and GIDs must be unique.
        let config = SwitchConfig::tiny();
        let fabric = Fabric::new(LatencyModel::new(LatencyConfig::zero()));
        let memory = Arc::new(RegisterMemory::new(config));
        let handle = start_switch(config, memory, fabric.clone());

        let clients = 8;
        let per_client = 200u64;
        let mut joins = Vec::new();
        for c in 0..clients {
            let fabric = fabric.clone();
            joins.push(std::thread::spawn(move || {
                let ep = EndpointId::Worker(NodeId(0), WorkerId(c as u16));
                let mb = fabric.register(ep);
                let mut gids = Vec::new();
                for i in 0..per_client {
                    let txn =
                        SwitchTxn::new(TxnHeader::new(ep, i), vec![Instruction::add(RegisterSlot::new(0, 0, 0), 1)]);
                    fabric.send(ep, SW, SwitchMessage::Txn(txn));
                    match mb.recv_timeout(Duration::from_secs(20)).msg().expect("reply").payload {
                        SwitchMessage::TxnReply(r) => gids.push(r.gid.0),
                        other => panic!("unexpected {other:?}"),
                    }
                }
                gids
            }));
        }
        let mut all_gids: Vec<u64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all_gids.sort_unstable();
        all_gids.dedup();
        assert_eq!(all_gids.len() as u64, clients as u64 * per_client, "GIDs must be unique");
        assert_eq!(handle.memory().read(RegisterSlot::new(0, 0, 0)), clients as u64 * per_client);
        handle.shutdown();
    }
}
