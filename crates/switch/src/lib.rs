//! # p4db-switch
//!
//! A software simulator of the P4-programmable switch that P4DB runs its
//! in-network transaction engine on (Intel Tofino, PISA / TNA architecture).
//!
//! The paper's switch program is reproduced component by component:
//!
//! * [`memory`] — register arrays partitioned over MAU stages (stateful
//!   SRAM), ~820K 8-byte cells per pipeline with the default configuration.
//! * [`instruction`] — the per-register stateful ALU operations a packet can
//!   invoke (read, write, add, fetch-add, constrained writes) and the
//!   pass-planning rules that encode the Tofino memory model: accesses must
//!   follow stage order and a register array is touched at most once per
//!   pass.
//! * [`packet`] — the transaction packet format of Fig 6 (header with
//!   `is_multipass`, `locks`, `nb_recircs`, plus instructions) and all
//!   messages exchanged with database nodes.
//! * [`locks`] — the pipeline locks used by multi-pass transactions,
//!   including the 2-bit fine-grained lock of Listing 1.
//! * [`engine`] — the data-plane engine: one-packet-one-transaction
//!   pipelined execution (equivalent to a serial order, hence abort-free
//!   isolation), recirculation with the fast lock-owner port, GID assignment.
//! * [`control_plane`] — offloading hot tuples into register slots, capacity
//!   accounting, snapshots and recovery hooks.
//! * [`lock_manager`] — the in-switch lock table of the LM-Switch baseline.
//! * [`stats`] — data-plane counters.
//!
//! The hardware substitution is documented in `DESIGN.md`: the properties the
//! evaluation relies on (serial pipelined execution, single-register-access
//! per pass, recirculation cost, ½-RTT reachability, bounded SRAM) are all
//! enforced by this simulator.

pub mod config;
pub mod control_plane;
pub mod engine;
pub mod instruction;
pub mod lock_manager;
pub mod locks;
pub mod memory;
pub mod packet;
pub mod stats;

pub use config::{LockGranularity, SwitchConfig};
pub use control_plane::ControlPlane;
pub use engine::{start_switch, start_switch_with_id, SwitchHandle};
pub use instruction::{apply_op, is_single_pass, plan_passes, InstrResult, Instruction, OpCode, RegisterSlot};
pub use lock_manager::SwitchLockTable;
pub use locks::{locks_for_stages, LockMask, PipelineLocks};
pub use memory::RegisterMemory;
pub use packet::{
    IntentStatusReply, IntentStatusRequest, LockRelease, LockReply, LockRequest, ProbeReply, ProbeRequest,
    SwitchMessage, SwitchTxn, TxnHeader, TxnReply, WarmDecision,
};
pub use stats::{SwitchStats, SwitchStatsSnapshot};
