//! The network packet format of switch transactions and the message types
//! exchanged between database nodes and the switch.
//!
//! Mirrors Fig 6: a header with processing information (`is_multipass`,
//! `locks`, `nb_recircs`) followed by a variable number of instructions. The
//! responses carry the results of all read/write operations plus the
//! switch-assigned globally-unique transaction id (GID) used for durability
//! and recovery (§6.1).

use crate::instruction::{InstrResult, Instruction};
use crate::locks::LockMask;
use p4db_common::{GlobalTxnId, TxnId};
use p4db_net::EndpointId;

/// Processing information carried in the packet header (the grey fields of
/// Fig 6).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TxnHeader {
    /// Endpoint (worker) that issued the transaction and receives the reply.
    pub origin: EndpointId,
    /// Client-chosen correlation token, echoed in the reply.
    pub token: u64,
    /// The issuing node's transaction id, carried in the packet so the
    /// data-plane audit log can attribute every execution to the intent the
    /// node logged before sending (exactly-once accounting; `TxnId(0)` for
    /// raw clients that do not participate in the durability protocol).
    pub txn_id: TxnId,
    /// Whether the issuing node determined (from its replica of the data
    /// layout) that the transaction needs more than one pipeline pass.
    pub is_multipass: bool,
    /// For multi-pass transactions: the pipeline locks to acquire on the
    /// first pass and release on the last. For single-pass transactions: the
    /// locks that must be *free* for the transaction to be admitted.
    pub locks: LockMask,
    /// Recirculation counter, incremented every time the transaction could
    /// not be admitted (or needs another pass) and is recirculated.
    pub nb_recircs: u32,
    /// Whether the switch should multicast the commit decision and results to
    /// all database nodes after execution (warm transactions, Fig 10).
    pub multicast_decision: bool,
}

impl TxnHeader {
    pub fn new(origin: EndpointId, token: u64) -> Self {
        TxnHeader {
            origin,
            token,
            txn_id: TxnId(0),
            is_multipass: false,
            locks: LockMask::NONE,
            nb_recircs: 0,
            multicast_decision: false,
        }
    }
}

/// A switch transaction: one network packet, one transaction (§4.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SwitchTxn {
    pub header: TxnHeader,
    pub instructions: Vec<Instruction>,
}

impl SwitchTxn {
    pub fn new(header: TxnHeader, instructions: Vec<Instruction>) -> Self {
        SwitchTxn { header, instructions }
    }

    /// Approximate wire size in bytes: a fixed header plus 16 bytes per
    /// instruction (slot + opcode + operand). Used only for reporting.
    pub fn wire_size(&self) -> usize {
        32 + 16 * self.instructions.len()
    }
}

/// Reply to a [`SwitchTxn`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxnReply {
    pub token: u64,
    /// Globally-unique, serially-ordered id assigned by the switch; its order
    /// is the serial execution order on the switch.
    pub gid: GlobalTxnId,
    /// One result per instruction, in instruction order.
    pub results: Vec<InstrResult>,
    /// How many times the packet was recirculated before completing.
    pub recirculations: u32,
}

/// A lock request processed by the switch when it acts as a central lock
/// manager (the LM-Switch / NetLock-style baseline, §7.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LockRequest {
    pub origin: EndpointId,
    pub token: u64,
    /// Lock name; the transaction engine hashes the tuple id into this.
    pub lock_id: u64,
    pub exclusive: bool,
}

/// Reply to a [`LockRequest`]. The LM-Switch grants or denies immediately
/// (deny → the requesting transaction aborts under NO_WAIT / retries), which
/// mirrors how the lock-manager baseline behaves under contention.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LockReply {
    pub token: u64,
    pub granted: bool,
}

/// Releases a previously granted lock on the LM-Switch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LockRelease {
    pub lock_id: u64,
    pub exclusive: bool,
}

/// Commit decision + switch results multicast to all database nodes for warm
/// transactions (Fig 10). Nodes use it to commit their cold sub-transaction
/// without an extra coordinator round trip.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct WarmDecision {
    pub token: u64,
    pub gid: GlobalTxnId,
    pub commit: bool,
}

/// Health-check heartbeat sent to a switch by the supervisor / breaker
/// half-open path. Costs one pipeline pass and touches no registers.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ProbeRequest {
    pub origin: EndpointId,
    /// Correlation token, echoed in the reply.
    pub token: u64,
}

/// Reply to a [`ProbeRequest`]: proof of life plus a coarse progress
/// indicator (how many transactions the switch has executed so far).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ProbeReply {
    pub token: u64,
    /// Transactions executed by this switch since start (its GID counter).
    pub executed: u64,
}

/// Asks the switch whether it executed the intent logged under `txn` — the
/// in-doubt resolver's query. Answerable because every execution is recorded
/// in the audit log keyed by the issuing node's [`TxnId`] (exactly-once
/// dedup, §6.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IntentStatusRequest {
    pub origin: EndpointId,
    pub token: u64,
    /// The intent's transaction id as logged in the coordinator WAL.
    pub txn: TxnId,
}

/// Reply to an [`IntentStatusRequest`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IntentStatusReply {
    pub token: u64,
    pub txn: TxnId,
    /// Whether the switch's audit log contains an execution for `txn`.
    pub executed: bool,
    /// The GID assigned at execution, when `executed`.
    pub gid: Option<GlobalTxnId>,
}

/// Everything that travels over the rack fabric in this system.
#[derive(Clone, PartialEq, Debug)]
pub enum SwitchMessage {
    /// Node → switch: execute a transaction on the hot set.
    Txn(SwitchTxn),
    /// Switch → issuing worker: transaction results.
    TxnReply(TxnReply),
    /// Node → switch (LM-Switch mode): acquire a lock.
    LockRequest(LockRequest),
    /// Switch → issuing worker (LM-Switch mode): grant / deny.
    LockReply(LockReply),
    /// Node → switch (LM-Switch mode): release a lock.
    LockRelease(LockRelease),
    /// Switch → all nodes: warm transaction decision multicast.
    WarmDecision(WarmDecision),
    /// Supervisor → switch: health-check heartbeat.
    ProbeRequest(ProbeRequest),
    /// Switch → supervisor: proof of life.
    ProbeReply(ProbeReply),
    /// Resolver → switch: did you execute this intent?
    IntentStatusRequest(IntentStatusRequest),
    /// Switch → resolver: definitive executed / not-executed answer.
    IntentStatusReply(IntentStatusReply),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::RegisterSlot;
    use p4db_common::{NodeId, WorkerId};

    fn origin() -> EndpointId {
        EndpointId::Worker(NodeId(1), WorkerId(2))
    }

    #[test]
    fn header_defaults_are_single_pass_no_locks() {
        let h = TxnHeader::new(origin(), 7);
        assert!(!h.is_multipass);
        assert!(h.locks.is_empty());
        assert_eq!(h.nb_recircs, 0);
        assert!(!h.multicast_decision);
        assert_eq!(h.token, 7);
    }

    #[test]
    fn wire_size_grows_with_instructions() {
        let small = SwitchTxn::new(TxnHeader::new(origin(), 1), vec![Instruction::read(RegisterSlot::new(0, 0, 0))]);
        let big = SwitchTxn::new(
            TxnHeader::new(origin(), 1),
            (0..8).map(|i| Instruction::read(RegisterSlot::new(0, 0, i))).collect(),
        );
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), 7 * 16);
    }

    #[test]
    fn switch_message_variants_are_distinguishable() {
        let msg = SwitchMessage::LockReply(LockReply { token: 9, granted: true });
        match msg {
            SwitchMessage::LockReply(r) => assert!(r.granted),
            _ => panic!("wrong variant"),
        }
    }
}
