//! The switch's stateful memory: register arrays partitioned over MAU stages.
//!
//! Cells are `AtomicU64` so that the control plane (offload, recovery,
//! snapshots) can inspect memory while the pipeline thread owns the data
//! path; during normal processing the pipeline thread is the only writer, so
//! all accesses use relaxed ordering and there is no cross-thread contention
//! on the hot path.

use crate::config::SwitchConfig;
use crate::instruction::{apply_op, InstrResult, Instruction, RegisterSlot};
use std::sync::atomic::{AtomicU64, Ordering};

/// All register arrays of one pipeline.
#[derive(Debug)]
pub struct RegisterMemory {
    config: SwitchConfig,
    /// `stages[stage][array]` is a boxed slice of cells.
    stages: Vec<Vec<Box<[AtomicU64]>>>,
}

impl RegisterMemory {
    /// Allocates (zero-initialised) register memory for `config`.
    pub fn new(config: SwitchConfig) -> Self {
        config.validate().expect("invalid switch configuration");
        let stages = (0..config.num_stages)
            .map(|_| {
                (0..config.arrays_per_stage)
                    .map(|_| {
                        (0..config.slots_per_array).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice()
                    })
                    .collect()
            })
            .collect();
        RegisterMemory { config, stages }
    }

    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Whether `slot` addresses an existing cell.
    pub fn slot_in_bounds(&self, slot: RegisterSlot) -> bool {
        slot.stage < self.config.num_stages
            && slot.array < self.config.arrays_per_stage
            && slot.index < self.config.slots_per_array
    }

    #[inline]
    fn cell(&self, slot: RegisterSlot) -> &AtomicU64 {
        &self.stages[slot.stage as usize][slot.array as usize][slot.index as usize]
    }

    /// Reads a cell (control plane / recovery path).
    ///
    /// # Panics
    /// Panics if the slot is out of bounds.
    pub fn read(&self, slot: RegisterSlot) -> u64 {
        assert!(self.slot_in_bounds(slot), "register slot out of bounds: {slot:?}");
        self.cell(slot).load(Ordering::Relaxed)
    }

    /// Writes a cell directly (offload / recovery path, not the data path).
    ///
    /// # Panics
    /// Panics if the slot is out of bounds.
    pub fn write(&self, slot: RegisterSlot, value: u64) {
        assert!(self.slot_in_bounds(slot), "register slot out of bounds: {slot:?}");
        self.cell(slot).store(value, Ordering::Relaxed);
    }

    /// Executes one instruction against its register cell and returns the
    /// result reported to the issuing node. This is the data-path operation;
    /// the pipeline thread is its only caller during normal operation.
    ///
    /// Operand forwarding (`operand_from`) is resolved by the caller (the
    /// pipeline engine), which passes the effective operand via
    /// [`Self::execute_resolved`]; this entry point uses the immediate.
    ///
    /// # Panics
    /// Panics if the slot is out of bounds (the control plane never hands out
    /// such slots, so this indicates a corrupted packet).
    #[inline]
    pub fn execute(&self, instr: &Instruction) -> InstrResult {
        self.execute_resolved(instr, instr.operand)
    }

    /// Executes an instruction with an explicitly resolved operand (used for
    /// read-dependent writes, where the operand comes from an earlier
    /// instruction's result carried in the packet metadata).
    #[inline]
    pub fn execute_resolved(&self, instr: &Instruction, operand: u64) -> InstrResult {
        assert!(self.slot_in_bounds(instr.slot), "register slot out of bounds: {:?}", instr.slot);
        let cell = self.cell(instr.slot);
        let current = cell.load(Ordering::Relaxed);
        let (new, result) = apply_op(current, instr.op, operand);
        if new != current {
            cell.store(new, Ordering::Relaxed);
        }
        result
    }

    /// Clears all register contents (used to model a switch crash before
    /// recovery).
    pub fn clear(&self) {
        for stage in &self.stages {
            for array in stage {
                for cell in array.iter() {
                    cell.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::OpCode;

    fn memory() -> RegisterMemory {
        RegisterMemory::new(SwitchConfig::tiny())
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let mem = memory();
        assert_eq!(mem.read(RegisterSlot::new(0, 0, 0)), 0);
        assert_eq!(mem.read(RegisterSlot::new(3, 1, 63)), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mem = memory();
        let slot = RegisterSlot::new(2, 1, 17);
        mem.write(slot, 4242);
        assert_eq!(mem.read(slot), 4242);
    }

    #[test]
    fn execute_applies_alu_semantics() {
        let mem = memory();
        let slot = RegisterSlot::new(1, 0, 3);
        mem.write(slot, 100);
        let res = mem.execute(&Instruction::new(slot, OpCode::FetchAdd, 5));
        assert_eq!(res.value, 100);
        assert_eq!(mem.read(slot), 105);
        let res = mem.execute(&Instruction::new(slot, OpCode::CondSub, 200));
        assert!(!res.applied);
        assert_eq!(mem.read(slot), 105);
    }

    #[test]
    fn bounds_checking() {
        let mem = memory();
        assert!(mem.slot_in_bounds(RegisterSlot::new(3, 1, 63)));
        assert!(!mem.slot_in_bounds(RegisterSlot::new(4, 0, 0)));
        assert!(!mem.slot_in_bounds(RegisterSlot::new(0, 2, 0)));
        assert!(!mem.slot_in_bounds(RegisterSlot::new(0, 0, 64)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        memory().read(RegisterSlot::new(9, 0, 0));
    }

    #[test]
    fn clear_wipes_everything() {
        let mem = memory();
        mem.write(RegisterSlot::new(0, 0, 0), 1);
        mem.write(RegisterSlot::new(3, 1, 5), 2);
        mem.clear();
        assert_eq!(mem.read(RegisterSlot::new(0, 0, 0)), 0);
        assert_eq!(mem.read(RegisterSlot::new(3, 1, 5)), 0);
    }
}
