//! Switch resource configuration.

/// How the pipeline locks used for multi-pass transactions are organised
/// (§5.3 "Fine-grained Locking").
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockGranularity {
    /// A single pipeline lock: at most one multi-pass transaction in the
    /// pipeline at a time (the naïve fallback scheme of §5.2).
    Coarse,
    /// The 2-bit lock of Listing 1: the pipeline is split into a *left* and a
    /// *right* half, each protected by its own lock bit, so two multi-pass
    /// transactions touching disjoint halves can be in flight concurrently.
    FineGrained,
}

/// Static resources and feature switches of the simulated Tofino.
///
/// The defaults approximate the switch used in the paper: roughly 820K 8-byte
/// register cells usable for hot tuples per pipeline (§2.3), spread over the
/// MAU stages.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SwitchConfig {
    /// Number of MAU stages in the pipeline.
    pub num_stages: u8,
    /// Register arrays per stage.
    pub arrays_per_stage: u8,
    /// Cells per register array.
    pub slots_per_array: u32,
    /// Pipeline lock organisation.
    pub lock_granularity: LockGranularity,
    /// Whether the dedicated recirculation port for lock owners is enabled
    /// (§5.3 "Fast Recirculating"). When disabled, lock owners share the
    /// waiting queue with blocked transactions.
    pub fast_recirculation: bool,
    /// Per-pass pipeline latency in nanoseconds (models the time a packet
    /// spends traversing the MAU stages once).
    pub pass_latency_ns: u64,
    /// Whether the data plane keeps an audit log of executed transactions
    /// (`(TxnId, GID)` pairs, in serial execution order). The chaos harness
    /// uses it as ground truth for exactly-once checking; it is off in the
    /// performance profiles because the log grows with every transaction.
    pub audit_data_plane: bool,
    /// How many ingress packets the engine dequeues and executes per
    /// scheduling quantum, and the upper bound on how many replies it
    /// coalesces into one egress frame per destination. `1` reproduces the
    /// unbatched one-packet-per-loop behaviour exactly; larger values
    /// amortise the per-message channel/wake-up cost and model the pipelining
    /// of back-to-back single-pass packets (§4.1: packets already in the
    /// pipeline occupy consecutive cycles). The intra-quantum serial order is
    /// preserved — and recorded in the data-plane audit log — so batching is
    /// invisible to the isolation argument of §5.1.
    pub batch_size: u16,
    /// Flush deadline (µs) for partially filled reply frames. The engine
    /// flushes at every quantum boundary anyway; the deadline bounds reply
    /// latency if a quantum ever stalls mid-burst.
    pub flush_us: u64,
}

impl SwitchConfig {
    /// Paper-like defaults: 10 usable stages × 4 arrays × 20 480 cells
    /// = 819 200 8-byte cells ≈ the ~820K hot tuples per pipeline quoted in
    /// §2.3, with all §5.3 optimizations enabled.
    pub const fn tofino_defaults() -> Self {
        SwitchConfig {
            num_stages: 10,
            arrays_per_stage: 4,
            slots_per_array: 20_480,
            lock_granularity: LockGranularity::FineGrained,
            fast_recirculation: true,
            pass_latency_ns: 60,
            audit_data_plane: false,
            batch_size: 1,
            flush_us: 50,
        }
    }

    /// A small configuration for unit tests: tiny memory, still multiple
    /// stages/arrays so layout logic is exercised.
    pub const fn tiny() -> Self {
        SwitchConfig {
            num_stages: 4,
            arrays_per_stage: 2,
            slots_per_array: 64,
            lock_granularity: LockGranularity::FineGrained,
            fast_recirculation: true,
            pass_latency_ns: 0,
            audit_data_plane: true,
            batch_size: 1,
            flush_us: 50,
        }
    }

    /// Configuration with all §5.3 optimizations disabled and no declustering
    /// assumed — the "Unoptimized" baseline of Fig 15c.
    pub const fn unoptimized() -> Self {
        SwitchConfig { lock_granularity: LockGranularity::Coarse, fast_recirculation: false, ..Self::tofino_defaults() }
    }

    /// Derives a configuration whose total capacity is (close to, rounding
    /// up) `rows` cells, used by the Fig 17 capacity sweep. Stage and array
    /// counts stay fixed; only the array depth shrinks/grows.
    pub fn with_total_rows(mut self, rows: u64) -> Self {
        let arrays = self.num_stages as u64 * self.arrays_per_stage as u64;
        self.slots_per_array = rows.div_ceil(arrays).max(1) as u32;
        self
    }

    /// Total number of register cells on the switch.
    pub fn total_slots(&self) -> u64 {
        self.num_stages as u64 * self.arrays_per_stage as u64 * self.slots_per_array as u64
    }

    /// Total register SRAM in bytes (8 bytes per cell).
    pub fn total_bytes(&self) -> u64 {
        self.total_slots() * 8
    }

    /// Number of pipeline locks implied by the lock granularity.
    pub fn num_locks(&self) -> u8 {
        match self.lock_granularity {
            LockGranularity::Coarse => 1,
            LockGranularity::FineGrained => 2,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_stages == 0 {
            return Err("switch must have at least one MAU stage".into());
        }
        if self.arrays_per_stage == 0 {
            return Err("each stage needs at least one register array".into());
        }
        if self.slots_per_array == 0 {
            return Err("register arrays must have at least one cell".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1 (1 = unbatched)".into());
        }
        Ok(())
    }
}

impl Default for SwitchConfig {
    fn default() -> Self {
        Self::tofino_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_matches_paper_ballpark() {
        let c = SwitchConfig::tofino_defaults();
        assert!(c.total_slots() >= 800_000 && c.total_slots() <= 850_000);
        assert!(c.total_bytes() >= 6 * 1024 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn with_total_rows_hits_requested_capacity() {
        for rows in [1_000u64, 10_000, 65_000, 650_000] {
            let c = SwitchConfig::tofino_defaults().with_total_rows(rows);
            assert!(c.total_slots() >= rows, "requested {rows}, got {}", c.total_slots());
            // Rounding slack is bounded by one cell per array.
            assert!(c.total_slots() < rows + c.num_stages as u64 * c.arrays_per_stage as u64);
        }
    }

    #[test]
    fn lock_count_follows_granularity() {
        assert_eq!(SwitchConfig::unoptimized().num_locks(), 1);
        assert_eq!(SwitchConfig::tofino_defaults().num_locks(), 2);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut c = SwitchConfig::tiny();
        c.num_stages = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::tiny();
        c.arrays_per_stage = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::tiny();
        c.slots_per_array = 0;
        assert!(c.validate().is_err());
    }
}
