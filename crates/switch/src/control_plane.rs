//! The switch control plane: offloading hot tuples into register slots,
//! capacity accounting, and the snapshot/restore hooks used for recovery.
//!
//! In the real system this is the C++ control-plane agent that installs
//! match-action entries and initialises register cells through the Tofino
//! driver; here it owns the placement map (tuple → register slot) and writes
//! directly into [`RegisterMemory`]. Offloading happens in an offline step
//! before transactions run (§3.1), so the control plane is not involved in
//! the data path.

use crate::config::SwitchConfig;
use crate::instruction::RegisterSlot;
use crate::memory::RegisterMemory;
use p4db_common::{Error, Result, TupleId};
use std::collections::HashMap;
use std::sync::Arc;

/// One offloaded tuple: where it lives and how many register cells it
/// occupies (wider tuples consume more SRAM, which is what shrinks the
/// row capacity in the Fig 17 tuple-width experiment).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pub slot: RegisterSlot,
    pub cells: u32,
}

/// The control plane state.
#[derive(Debug)]
pub struct ControlPlane {
    config: SwitchConfig,
    memory: Arc<RegisterMemory>,
    placements: HashMap<TupleId, Placement>,
    /// Next free cell index per (stage, array).
    next_free: Vec<Vec<u32>>,
    /// Total cells consumed (including padding cells of wide tuples).
    cells_used: u64,
}

impl ControlPlane {
    pub fn new(config: SwitchConfig, memory: Arc<RegisterMemory>) -> Self {
        assert_eq!(memory.config(), &config, "control plane and memory must share a configuration");
        ControlPlane {
            config,
            memory,
            placements: HashMap::new(),
            next_free: vec![vec![0; config.arrays_per_stage as usize]; config.num_stages as usize],
            cells_used: 0,
        }
    }

    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Number of register cells still unallocated in the given array.
    pub fn free_cells_in(&self, stage: u8, array: u8) -> u32 {
        self.config.slots_per_array - self.next_free[stage as usize][array as usize]
    }

    /// Total free cells on the switch.
    pub fn free_cells(&self) -> u64 {
        self.config.total_slots() - self.cells_used
    }

    /// Number of offloaded tuples.
    pub fn offloaded_tuples(&self) -> usize {
        self.placements.len()
    }

    /// How many register cells a tuple of `byte_width` bytes occupies.
    /// The switch column itself is one 8-byte cell; wider rows reserve
    /// additional cells to model the SRAM they would consume.
    pub fn cells_for_width(byte_width: usize) -> u32 {
        (byte_width.max(8) as u32).div_ceil(8)
    }

    /// Offloads a tuple into a specific stage/array chosen by the data layout
    /// algorithm. The concrete cell index is assigned by the control plane.
    ///
    /// Errors if the tuple is already offloaded or the array is full.
    pub fn offload_into(
        &mut self,
        tuple: TupleId,
        stage: u8,
        array: u8,
        byte_width: usize,
        initial: u64,
    ) -> Result<RegisterSlot> {
        if stage >= self.config.num_stages || array >= self.config.arrays_per_stage {
            return Err(Error::SwitchControlPlane(format!("stage {stage}/array {array} outside switch resources")));
        }
        if self.placements.contains_key(&tuple) {
            return Err(Error::SwitchControlPlane(format!("{tuple} already offloaded")));
        }
        let cells = Self::cells_for_width(byte_width);
        let free = self.free_cells_in(stage, array);
        if free < cells {
            return Err(Error::SwitchControlPlane(format!(
                "stage {stage}/array {array} full ({free} cells free, {cells} needed)"
            )));
        }
        let index = self.next_free[stage as usize][array as usize];
        self.next_free[stage as usize][array as usize] += cells;
        self.cells_used += cells as u64;
        let slot = RegisterSlot::new(stage, array, index);
        self.memory.write(slot, initial);
        self.placements.insert(tuple, Placement { slot, cells });
        Ok(slot)
    }

    /// Offloads a tuple into the least-loaded array of the least-loaded stage
    /// (used when no declustered layout is available, i.e. the "random /
    /// worst" layouts of Fig 15c and Fig 16 fall back to this after shuffling
    /// stage preference).
    pub fn offload_anywhere(&mut self, tuple: TupleId, byte_width: usize, initial: u64) -> Result<RegisterSlot> {
        let cells = Self::cells_for_width(byte_width);
        let mut best: Option<(u8, u8, u32)> = None;
        for stage in 0..self.config.num_stages {
            for array in 0..self.config.arrays_per_stage {
                let free = self.free_cells_in(stage, array);
                if free >= cells && best.is_none_or(|(_, _, f)| free > f) {
                    best = Some((stage, array, free));
                }
            }
        }
        match best {
            Some((stage, array, _)) => self.offload_into(tuple, stage, array, byte_width, initial),
            None => Err(Error::SwitchControlPlane(format!(
                "switch capacity exhausted ({} cells used of {})",
                self.cells_used,
                self.config.total_slots()
            ))),
        }
    }

    /// Where a tuple lives on the switch, if it was offloaded.
    pub fn lookup(&self, tuple: TupleId) -> Option<RegisterSlot> {
        self.placements.get(&tuple).map(|p| p.slot)
    }

    /// Iterates over all placements (used to replicate the hot-set index onto
    /// the database nodes, §6.1).
    pub fn placements(&self) -> impl Iterator<Item = (TupleId, RegisterSlot)> + '_ {
        self.placements.iter().map(|(t, p)| (*t, p.slot))
    }

    /// Reads the current value of an offloaded tuple's switch column.
    pub fn read_tuple(&self, tuple: TupleId) -> Option<u64> {
        self.lookup(tuple).map(|slot| self.memory.read(slot))
    }

    /// Snapshot of all offloaded tuples and their current switch values.
    pub fn snapshot(&self) -> Vec<(TupleId, u64)> {
        let mut snap: Vec<_> = self.placements.iter().map(|(t, p)| (*t, self.memory.read(p.slot))).collect();
        snap.sort_by_key(|(t, _)| (t.table.0, t.key));
        snap
    }

    /// Restores register contents from recovered values (switch recovery,
    /// §6.1/§A.3). Unknown tuples are ignored and reported back.
    pub fn restore(&mut self, values: &[(TupleId, u64)]) -> usize {
        let mut unknown = 0;
        for (tuple, value) in values {
            match self.placements.get(tuple) {
                Some(p) => self.memory.write(p.slot, *value),
                None => unknown += 1,
            }
        }
        unknown
    }

    /// Clears all register contents but keeps placements — models a switch
    /// crash/restart with the data-plane program re-deployed but state lost.
    pub fn crash_data(&self) {
        self.memory.clear();
    }

    /// Forgets every placement *and* clears register memory — a switch
    /// crash/restart where the hot set will be offloaded from scratch,
    /// possibly into different register slots (mid-run re-offload recovery).
    pub fn reset(&mut self) {
        self.placements.clear();
        self.next_free = vec![vec![0; self.config.arrays_per_stage as usize]; self.config.num_stages as usize];
        self.cells_used = 0;
        self.memory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4db_common::TableId;

    fn setup() -> (ControlPlane, Arc<RegisterMemory>) {
        let config = SwitchConfig::tiny();
        let memory = Arc::new(RegisterMemory::new(config));
        (ControlPlane::new(config, Arc::clone(&memory)), memory)
    }

    fn tuple(key: u64) -> TupleId {
        TupleId::new(TableId(0), key)
    }

    #[test]
    fn offload_into_places_and_initialises() {
        let (mut cp, memory) = setup();
        let slot = cp.offload_into(tuple(1), 2, 1, 8, 77).unwrap();
        assert_eq!(slot.stage, 2);
        assert_eq!(slot.array, 1);
        assert_eq!(memory.read(slot), 77);
        assert_eq!(cp.lookup(tuple(1)), Some(slot));
        assert_eq!(cp.offloaded_tuples(), 1);
    }

    #[test]
    fn double_offload_is_rejected() {
        let (mut cp, _) = setup();
        cp.offload_into(tuple(1), 0, 0, 8, 0).unwrap();
        assert!(cp.offload_into(tuple(1), 1, 0, 8, 0).is_err());
    }

    #[test]
    fn capacity_is_enforced_per_array() {
        let (mut cp, _) = setup(); // 64 cells per array
        for i in 0..64 {
            cp.offload_into(tuple(i), 0, 0, 8, 0).unwrap();
        }
        let err = cp.offload_into(tuple(64), 0, 0, 8, 0).unwrap_err();
        assert!(matches!(err, Error::SwitchControlPlane(_)));
        // Other arrays are unaffected.
        assert!(cp.offload_into(tuple(64), 0, 1, 8, 0).is_ok());
    }

    #[test]
    fn wide_tuples_consume_more_cells() {
        let (mut cp, _) = setup();
        assert_eq!(ControlPlane::cells_for_width(8), 1);
        assert_eq!(ControlPlane::cells_for_width(64), 8);
        assert_eq!(ControlPlane::cells_for_width(1), 1);
        let before = cp.free_cells();
        cp.offload_into(tuple(1), 0, 0, 64, 0).unwrap();
        assert_eq!(before - cp.free_cells(), 8);
    }

    #[test]
    fn offload_anywhere_spreads_until_exhaustion() {
        let (mut cp, _) = setup();
        let total = cp.config().total_slots();
        for i in 0..total {
            cp.offload_anywhere(tuple(i), 8, i).unwrap();
        }
        assert_eq!(cp.free_cells(), 0);
        assert!(cp.offload_anywhere(tuple(total), 8, 0).is_err());
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        let (mut cp, memory) = setup();
        cp.offload_into(tuple(1), 0, 0, 8, 10).unwrap();
        cp.offload_into(tuple(2), 1, 0, 8, 20).unwrap();
        let snap = cp.snapshot();
        assert_eq!(snap.len(), 2);
        cp.crash_data();
        assert_eq!(cp.read_tuple(tuple(1)), Some(0));
        let unknown = cp.restore(&snap);
        assert_eq!(unknown, 0);
        assert_eq!(cp.read_tuple(tuple(1)), Some(10));
        assert_eq!(cp.read_tuple(tuple(2)), Some(20));
        assert_eq!(memory.read(cp.lookup(tuple(2)).unwrap()), 20);
        // Restoring an unknown tuple reports it.
        assert_eq!(cp.restore(&[(tuple(99), 1)]), 1);
    }

    #[test]
    fn reset_forgets_placements_and_frees_capacity() {
        let (mut cp, memory) = setup();
        let slot = cp.offload_into(tuple(1), 0, 0, 8, 42).unwrap();
        let total = cp.config().total_slots();
        cp.reset();
        assert_eq!(cp.offloaded_tuples(), 0);
        assert_eq!(cp.free_cells(), total);
        assert_eq!(cp.lookup(tuple(1)), None);
        assert_eq!(memory.read(slot), 0);
        // The tuple can be offloaded again, into any slot.
        assert!(cp.offload_into(tuple(1), 1, 1, 8, 7).is_ok());
    }
}
