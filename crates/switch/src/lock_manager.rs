//! The in-switch lock table used by the LM-Switch baseline (NetLock-style,
//! reference \[69\] in the paper).
//!
//! In this mode the switch does not store any data; it only arbitrates locks
//! for hot tuples. Lock requests are processed at line rate in the data plane
//! and either granted or denied immediately; the data itself still lives on
//! the owning database node, so a transaction that obtains a lock still pays
//! the full remote round trip to access the tuple — which is exactly why the
//! paper finds this baseline provides little benefit under contention
//! (§7.3).

use std::collections::HashMap;

/// Lock state for one lock id.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LockState {
    Shared(u32),
    Exclusive,
}

/// The switch-resident lock table.
#[derive(Debug, Default)]
pub struct SwitchLockTable {
    locks: HashMap<u64, LockState>,
}

impl SwitchLockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `lock_id` in the requested mode. Grants are
    /// immediate; conflicts are denied (no queueing — the requester retries
    /// or aborts, matching the host's NO_WAIT discipline).
    pub fn try_acquire(&mut self, lock_id: u64, exclusive: bool) -> bool {
        match self.locks.get_mut(&lock_id) {
            None => {
                self.locks.insert(lock_id, if exclusive { LockState::Exclusive } else { LockState::Shared(1) });
                true
            }
            Some(LockState::Shared(n)) if !exclusive => {
                *n += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Releases a previously granted lock. Releasing a lock that is not held
    /// is a no-op (the release message of an aborted transaction may race
    /// with its own denied request).
    pub fn release(&mut self, lock_id: u64, exclusive: bool) {
        match self.locks.get_mut(&lock_id) {
            Some(LockState::Exclusive) if exclusive => {
                self.locks.remove(&lock_id);
            }
            Some(LockState::Shared(n)) if !exclusive => {
                *n -= 1;
                if *n == 0 {
                    self.locks.remove(&lock_id);
                }
            }
            _ => {}
        }
    }

    /// Number of currently held lock ids.
    pub fn held(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_excludes_everything() {
        let mut t = SwitchLockTable::new();
        assert!(t.try_acquire(1, true));
        assert!(!t.try_acquire(1, true));
        assert!(!t.try_acquire(1, false));
        t.release(1, true);
        assert!(t.try_acquire(1, false));
    }

    #[test]
    fn shared_locks_are_compatible_with_each_other() {
        let mut t = SwitchLockTable::new();
        assert!(t.try_acquire(5, false));
        assert!(t.try_acquire(5, false));
        assert!(!t.try_acquire(5, true));
        t.release(5, false);
        assert!(!t.try_acquire(5, true), "one shared holder remains");
        t.release(5, false);
        assert!(t.try_acquire(5, true));
    }

    #[test]
    fn distinct_lock_ids_are_independent() {
        let mut t = SwitchLockTable::new();
        assert!(t.try_acquire(1, true));
        assert!(t.try_acquire(2, true));
        assert_eq!(t.held(), 2);
    }

    #[test]
    fn spurious_release_is_harmless() {
        let mut t = SwitchLockTable::new();
        t.release(42, true);
        assert!(t.try_acquire(42, false));
        // Releasing in the wrong mode does not corrupt the entry.
        t.release(42, true);
        assert!(!t.try_acquire(42, true));
        t.release(42, false);
        assert!(t.try_acquire(42, true));
    }
}
