//! Pipeline locks for multi-pass transactions.
//!
//! A multi-pass transaction holds state across pipeline passes, so other
//! transactions that would touch the same registers must be kept out of the
//! pipeline until it finishes (§5.2). The naïve scheme uses a single
//! pipeline lock; the fine-grained optimization of §5.3 (Listing 1) packs two
//! independent lock bits ("left" / "right") into a single register so that
//! two multi-pass transactions over disjoint pipeline halves can run
//! concurrently — more bits are not implementable on the current Tofino
//! generation, which is why the maximum here is two as well.

use crate::config::{LockGranularity, SwitchConfig};

/// A set of pipeline locks, as a bitmask. Bit 0 = the single coarse lock or
/// the "left" fine-grained lock, bit 1 = the "right" fine-grained lock.
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct LockMask(pub u8);

impl LockMask {
    pub const NONE: LockMask = LockMask(0);
    pub const LEFT: LockMask = LockMask(0b01);
    pub const RIGHT: LockMask = LockMask(0b10);
    pub const BOTH: LockMask = LockMask(0b11);

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn contains(self, other: LockMask) -> bool {
        self.0 & other.0 == other.0
    }

    #[inline]
    pub fn intersects(self, other: LockMask) -> bool {
        self.0 & other.0 != 0
    }

    #[inline]
    pub fn union(self, other: LockMask) -> LockMask {
        LockMask(self.0 | other.0)
    }
}

/// Computes the pipeline locks that cover a set of MAU stages under the given
/// configuration. Single-pass transactions use this to know which locks must
/// be *free* for admission; multi-pass transactions use it to know which
/// locks to *acquire*.
pub fn locks_for_stages<I: IntoIterator<Item = u8>>(stages: I, config: &SwitchConfig) -> LockMask {
    let mut mask = LockMask::NONE;
    let boundary = config.num_stages / 2;
    for stage in stages {
        match config.lock_granularity {
            LockGranularity::Coarse => return LockMask::LEFT,
            LockGranularity::FineGrained => {
                if stage < boundary {
                    mask = mask.union(LockMask::LEFT);
                } else {
                    mask = mask.union(LockMask::RIGHT);
                }
            }
        }
    }
    mask
}

/// The pipeline lock register, mirroring Listing 1: `try_acquire` succeeds
/// only if none of the requested bits is currently set, and sets all of them
/// atomically (the data plane implements this as a single stateful register
/// action, so there is no partial acquisition to undo).
#[derive(Debug, Default)]
pub struct PipelineLocks {
    held: u8,
}

impl PipelineLocks {
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether all locks in `mask` are currently free.
    #[inline]
    pub fn is_free(&self, mask: LockMask) -> bool {
        self.held & mask.0 == 0
    }

    /// Attempts to acquire every lock in `mask`. All-or-nothing, like the
    /// `try_lock` register action in Listing 1.
    #[inline]
    pub fn try_acquire(&mut self, mask: LockMask) -> bool {
        if self.is_free(mask) {
            self.held |= mask.0;
            true
        } else {
            false
        }
    }

    /// Releases the locks in `mask`.
    ///
    /// # Panics
    /// Panics (in debug builds) if a lock being released is not held — that
    /// would indicate a protocol bug in the pipeline loop.
    #[inline]
    pub fn release(&mut self, mask: LockMask) {
        debug_assert_eq!(self.held & mask.0, mask.0, "releasing a lock that is not held");
        self.held &= !mask.0;
    }

    /// Bitmask of currently held locks (for stats / tests).
    pub fn held(&self) -> LockMask {
        LockMask(self.held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_set_operations() {
        assert!(LockMask::BOTH.contains(LockMask::LEFT));
        assert!(LockMask::LEFT.intersects(LockMask::BOTH));
        assert!(!LockMask::LEFT.intersects(LockMask::RIGHT));
        assert_eq!(LockMask::LEFT.union(LockMask::RIGHT), LockMask::BOTH);
        assert!(LockMask::NONE.is_empty());
    }

    #[test]
    fn coarse_granularity_always_maps_to_single_lock() {
        let config = SwitchConfig { lock_granularity: LockGranularity::Coarse, ..SwitchConfig::tiny() };
        assert_eq!(locks_for_stages([0], &config), LockMask::LEFT);
        assert_eq!(locks_for_stages([3], &config), LockMask::LEFT);
        assert_eq!(locks_for_stages([], &config), LockMask::NONE);
    }

    #[test]
    fn fine_grained_splits_pipeline_in_half() {
        let config = SwitchConfig::tiny(); // 4 stages, boundary at 2
        assert_eq!(locks_for_stages([0, 1], &config), LockMask::LEFT);
        assert_eq!(locks_for_stages([2, 3], &config), LockMask::RIGHT);
        assert_eq!(locks_for_stages([1, 2], &config), LockMask::BOTH);
    }

    #[test]
    fn try_acquire_is_all_or_nothing() {
        let mut locks = PipelineLocks::new();
        assert!(locks.try_acquire(LockMask::LEFT));
        // Requesting BOTH must fail because LEFT is taken, and must not
        // implicitly grab RIGHT.
        assert!(!locks.try_acquire(LockMask::BOTH));
        assert!(locks.is_free(LockMask::RIGHT));
        assert!(locks.try_acquire(LockMask::RIGHT));
        assert_eq!(locks.held(), LockMask::BOTH);
    }

    #[test]
    fn release_frees_only_requested_bits() {
        let mut locks = PipelineLocks::new();
        assert!(locks.try_acquire(LockMask::BOTH));
        locks.release(LockMask::LEFT);
        assert!(locks.is_free(LockMask::LEFT));
        assert!(!locks.is_free(LockMask::RIGHT));
        locks.release(LockMask::RIGHT);
        assert_eq!(locks.held(), LockMask::NONE);
    }

    #[test]
    fn two_disjoint_multipass_transactions_can_coexist_only_with_fine_granularity() {
        // With the coarse configuration both map to the same lock.
        let coarse = SwitchConfig { lock_granularity: LockGranularity::Coarse, ..SwitchConfig::tiny() };
        let fine = SwitchConfig::tiny();
        let txn_a_stages = [0u8, 1];
        let txn_b_stages = [2u8, 3];

        let mut locks = PipelineLocks::new();
        let a = locks_for_stages(txn_a_stages, &coarse);
        let b = locks_for_stages(txn_b_stages, &coarse);
        assert!(locks.try_acquire(a));
        assert!(!locks.try_acquire(b), "coarse lock must serialise them");

        let mut locks = PipelineLocks::new();
        let a = locks_for_stages(txn_a_stages, &fine);
        let b = locks_for_stages(txn_b_stages, &fine);
        assert!(locks.try_acquire(a));
        assert!(locks.try_acquire(b), "fine-grained locks must allow disjoint halves");
    }
}
