//! Data-plane statistics exported by the switch simulator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the pipeline thread. Shared via `Arc` so the
/// experiment driver and tests can observe them while the switch runs.
#[derive(Debug, Default)]
pub struct SwitchStats {
    /// Transactions executed to completion.
    pub txns_executed: AtomicU64,
    /// Transactions that completed in a single pipeline pass.
    pub single_pass: AtomicU64,
    /// Transactions that needed more than one pass.
    pub multi_pass: AtomicU64,
    /// Total pipeline passes executed (≥ txns_executed).
    pub passes: AtomicU64,
    /// Recirculations of packets *waiting* for a pipeline lock (admission
    /// denied).
    pub recirc_waiting: AtomicU64,
    /// Recirculations of packets that own a pipeline lock and continue their
    /// next pass (the §5.3 fast path).
    pub recirc_owner: AtomicU64,
    /// LM-Switch: lock requests processed.
    pub lm_requests: AtomicU64,
    /// LM-Switch: lock requests denied.
    pub lm_denied: AtomicU64,
    /// Warm-transaction decisions multicast to the nodes.
    pub multicasts: AtomicU64,
}

/// A point-in-time copy of [`SwitchStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SwitchStatsSnapshot {
    pub txns_executed: u64,
    pub single_pass: u64,
    pub multi_pass: u64,
    pub passes: u64,
    pub recirc_waiting: u64,
    pub recirc_owner: u64,
    pub lm_requests: u64,
    pub lm_denied: u64,
    pub multicasts: u64,
}

impl SwitchStats {
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> SwitchStatsSnapshot {
        SwitchStatsSnapshot {
            txns_executed: self.txns_executed.load(Ordering::Relaxed),
            single_pass: self.single_pass.load(Ordering::Relaxed),
            multi_pass: self.multi_pass.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            recirc_waiting: self.recirc_waiting.load(Ordering::Relaxed),
            recirc_owner: self.recirc_owner.load(Ordering::Relaxed),
            lm_requests: self.lm_requests.load(Ordering::Relaxed),
            lm_denied: self.lm_denied.load(Ordering::Relaxed),
            multicasts: self.multicasts.load(Ordering::Relaxed),
        }
    }
}

impl SwitchStatsSnapshot {
    /// Fraction of executed transactions that were single-pass.
    pub fn single_pass_fraction(&self) -> f64 {
        if self.txns_executed == 0 {
            0.0
        } else {
            self.single_pass as f64 / self.txns_executed as f64
        }
    }

    /// Average pipeline passes per transaction.
    pub fn passes_per_txn(&self) -> f64 {
        if self.txns_executed == 0 {
            0.0
        } else {
            self.passes as f64 / self.txns_executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = SwitchStats::default();
        SwitchStats::bump(&stats.txns_executed);
        SwitchStats::bump(&stats.txns_executed);
        SwitchStats::bump(&stats.single_pass);
        SwitchStats::bump(&stats.multi_pass);
        stats.passes.store(3, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.txns_executed, 2);
        assert_eq!(snap.single_pass_fraction(), 0.5);
        assert_eq!(snap.passes_per_txn(), 1.5);
    }

    #[test]
    fn empty_snapshot_ratios_are_zero() {
        let snap = SwitchStats::default().snapshot();
        assert_eq!(snap.single_pass_fraction(), 0.0);
        assert_eq!(snap.passes_per_txn(), 0.0);
    }
}
