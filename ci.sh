#!/usr/bin/env bash
# CI gate for the P4DB reproduction workspace.
#
# Everything here must pass on a machine with NO network access: the
# workspace deliberately has zero external dependencies (see README.md), so
# every cargo invocation runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --offline --release
cargo test --offline -q

echo "==> member-crate unit tests (root package already covered by tier-1)"
cargo test --offline --workspace --exclude p4db -q

echo "==> chaos smoke gate: fixed-seed fault + crash paths (incl. 2-switch per-switch crash/recovery, supervised blackhole outage liveness) with invariant checking"
cargo test --offline --release -q --test chaos smoke_ -- --nocapture

echo "==> batching gate: whole-frame faults at batch_size=16 (full differential sweep runs in tier-1)"
cargo test --offline --release -q --test batching batched_chaos -- --nocapture

echo "==> topology gate: 1-switch vs 2-switch differential on one workload (full 12x3 sweep runs in tier-1)"
cargo test --offline --release -q --test topology topology_differential_smallbank -- --nocapture

echo "==> recovery gate: fixed-seed checkpoint+tail vs genesis restart, torn-checkpoint fallback, codec-arm agreement (full 12x3 differential sweep runs in tier-1)"
cargo test --offline --release -q --test durability smoke_recovery_ -- --nocapture

echo "==> mvcc gate: snapshot-vs-2PL differential sweep, zero-lock read path, GC safety, doctored-chain detection"
cargo test --offline --release -q --test mvcc -- --nocapture

echo "==> bench smoke gate: BENCH json emission, schema validity, regression band vs BENCH_baseline.json"
# Absolute path: cargo runs bench binaries with the package dir as CWD.
# fig_node_scaling, fig_read_mix, fig_switch_scaling, fig_recovery and
# fig_outage ride along so the gate can floor the sharded-vs-single-latch
# node hot-path speedup, the snapshot-vs-2PL read-mostly speedup, the
# 2-switch-vs-1 topology speedup, the checkpointed-vs-genesis restart
# speedup and the degraded-mode throughput floor across a switch blackhole
# (alongside the batching tripwire).
BENCH_SMOKE="$(pwd)/target/BENCH_smoke.json"
rm -f "$BENCH_SMOKE"
P4DB_BENCH_JSON="$BENCH_SMOKE" P4DB_MEASURE_MS=25 cargo bench --offline -p p4db-bench --bench figures -- fig01 fig13 fig_node_scaling fig_read_mix fig_switch_scaling fig_recovery fig_outage > /dev/null
P4DB_BENCH_JSON="$BENCH_SMOKE" P4DB_MICRO_QUICK=1 cargo bench --offline -p p4db-bench --bench micro > /dev/null
P4DB_BENCH_JSON="$BENCH_SMOKE" P4DB_BENCH_GATE=1 cargo test --offline -q -p p4db-bench --lib gate_

echo "==> rustdoc: public API docs must build warning-free"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

echo "==> doctests: README + rustdoc examples of the client API"
cargo test --offline --doc -q
cargo test --offline --doc -q --workspace --exclude p4db

echo "==> examples"
cargo run --offline --release --example quickstart
cargo run --offline --release --example client_api
cargo run --offline --release --example smallbank_recovery
cargo run --offline --release --example tpcc_warm
cargo run --offline --release --example chaos_drill

echo "ci.sh: all green"
