//! Chaos drill: one fully-seeded fault-injection scenario end to end.
//!
//! Drives SmallBank on a P4DB cluster while the fabric drops, delays and
//! reorders messages from a seeded plan, crashes a database node (WAL-driven
//! restart) and the switch (recovery from the logs with a re-offload into
//! fresh register slots) between traffic waves, then replays the committed
//! history against a shadow store and checks every cluster-wide invariant.
//!
//! ```text
//! cargo run --release --example chaos_drill
//! ```

use p4db::chaos::{run_chaos, ChaosOptions, ChaosWorkload};
use p4db::common::NodeId;

fn main() {
    let mut options = ChaosOptions::new(ChaosWorkload::SmallBank, 0xC4A0);
    options.distributed_prob = 0.0; // single-partition traffic: node recovery is unambiguous
    options.crash_node = Some(NodeId(1));
    options.crash_switch = true;
    options.reoffload = true;

    let report = run_chaos(&options).expect("chaos run failed to execute");
    println!(
        "chaos drill (seed {:#x}): {} committed, {} aborted, {} in doubt",
        report.seed, report.committed, report.aborted, report.in_doubt
    );
    println!("  faults injected: {} ({} recorded)", report.faults_injected, report.fault_events.len());
    let node = report.node_recovery.as_ref().expect("node crash ran");
    println!(
        "  node crash: {} WAL records replayed, {} tuples restored, {} divergences",
        node.wal_records,
        node.restored_tuples,
        node.divergences.len()
    );
    let switch = report.switch_recovery.as_ref().expect("switch crash ran");
    println!(
        "  switch crash: {} completed / {} in-flight txns replayed, {} tuples re-offloaded",
        switch.outcome.completed,
        switch.outcome.inflight_ordered + switch.outcome.inflight_unordered,
        switch.restored_tuples
    );
    println!(
        "  invariants: {} switch txns replayed, {} in-doubt executed, {} in-doubt lost, {} cold tuples compared",
        report.invariants.replayed,
        report.invariants.in_doubt_executed,
        report.invariants.in_doubt_lost,
        report.invariants.cold_compared
    );

    assert!(report.committed > 200, "the drill must commit a healthy amount of work");
    assert!(report.is_clean(), "{}", report.failure_summary());
    println!("  all invariants hold");
}
