//! SmallBank + switch failure and recovery.
//!
//! Runs the SmallBank workload on a P4DB cluster, then simulates a switch
//! crash and reconstructs the switch state from the per-node write-ahead
//! logs using the GID-ordered replay of §6.1 / §A.3, verifying that the
//! recovered balances match the pre-crash state and that no balance ever
//! went negative (the switch's constrained writes enforce the overdraft
//! constraint without aborts).
//!
//! Run with: `cargo run --release --example smallbank_recovery`

use p4db::common::{CcScheme, SystemMode};
use p4db::core::Cluster;
use p4db::storage::recover_switch_state;
use p4db::workloads::{SmallBank, SmallBankConfig, Workload};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let workload: Arc<dyn Workload> = Arc::new(SmallBank::new(SmallBankConfig {
        customers_per_node: 20_000,
        hot_customers_per_node: 5,
        ..SmallBankConfig::default()
    }));

    let cluster = Cluster::builder(Arc::clone(&workload)).mode(SystemMode::P4db).cc(CcScheme::NoWait).build();
    println!("SmallBank cluster: {} hot account balances offloaded to the switch", cluster.offloaded_tuples());

    let stats = cluster.run_for(Duration::from_millis(500));
    println!(
        "ran {} transactions ({:.0} txn/s), abort rate {:.1}%",
        stats.merged.committed_total(),
        stats.throughput(),
        stats.abort_rate() * 100.0
    );
    assert!(
        stats.merged.committed_total() > 100,
        "cluster committed only {} transactions — not enough work to exercise recovery",
        stats.merged.committed_total()
    );

    // Capture the live switch state, then "crash" and recover from the logs.
    let live: Vec<(p4db::common::TupleId, u64)> = cluster
        .shared()
        .hot_index
        .load()
        .iter()
        .map(|(tuple, _)| (tuple, cluster.switch_value(tuple).expect("offloaded")))
        .collect();
    for (tuple, value) in &live {
        assert!((*value as i64) >= 0, "balance of {tuple} went negative: {value}");
    }

    let initial = cluster.offload_snapshot();
    let logs: Vec<&p4db::storage::Wal> = cluster.shared().nodes.iter().map(|n| n.wal()).collect();
    let recovered = recover_switch_state(initial, &logs);
    println!(
        "recovery replayed {} completed switch transactions ({} in-flight ordered by dependencies, {} unordered)",
        recovered.completed, recovered.inflight_ordered, recovered.inflight_unordered
    );

    let mut mismatches = 0;
    for (tuple, value) in &live {
        if recovered.values.get(tuple).copied().unwrap_or(initial[tuple]) != *value {
            mismatches += 1;
        }
    }
    assert_eq!(recovered.inconsistencies, 0, "log replay must reproduce the recorded results");
    assert_eq!(mismatches, 0, "recovered switch state must match the pre-crash state");
    println!("recovered switch state matches the pre-crash state for all {} hot tuples ✓", live.len());
}
