//! TPC-C with warm transactions.
//!
//! TPC-C's NewOrder and Payment transactions mix contended counters (district
//! `next_o_id`, warehouse/district YTD totals, hot stock) with cold work
//! (customer rows, order/order-line/history inserts). In P4DB they execute as
//! *warm* transactions: the cold part under 2PL on the nodes, the hot part as
//! an abort-free sub-transaction on the switch, stitched into the commit
//! protocol (§6.2). This example compares No-Switch and P4DB under different
//! degrees of distribution and prints the latency breakdown of Fig 18a.
//!
//! Run with: `cargo run --release --example tpcc_warm`

use p4db::common::stats::PHASES;
use p4db::common::{CcScheme, SystemMode};
use p4db::core::Cluster;
use p4db::workloads::{Tpcc, TpccConfig, Workload};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let workload: Arc<dyn Workload> = Arc::new(Tpcc::new(TpccConfig { items_loaded: 5_000, ..TpccConfig::new(8) }));
    let measure = Duration::from_millis(500);

    for distributed in [0.2, 0.75] {
        println!("== TPC-C 8 warehouses, {:.0}% distributed ==", distributed * 100.0);
        let mut baseline = None;
        for mode in [SystemMode::NoSwitch, SystemMode::P4db] {
            let cluster = Cluster::builder(Arc::clone(&workload))
                .mode(mode)
                .cc(CcScheme::NoWait)
                .distributed_prob(distributed)
                .build();
            let stats = cluster.run_for(measure);
            assert!(
                stats.merged.committed_total() > 100,
                "{} committed only {} transactions in {measure:?} — the cluster is not making progress",
                mode.label(),
                stats.merged.committed_total()
            );
            println!(
                "  {:<10} {:>9.0} txn/s   abort rate {:>5.1}%   warm share {:>5.1}%",
                mode.label(),
                stats.throughput(),
                stats.abort_rate() * 100.0,
                100.0 * stats.merged.committed_warm as f64 / stats.merged.committed_total().max(1) as f64
            );
            print!("    latency breakdown:");
            for (phase, d) in stats.phase_breakdown() {
                if PHASES.contains(&phase) {
                    print!("  {} {:.0}µs", phase.label(), d.as_secs_f64() * 1e6);
                }
            }
            println!();
            match mode {
                SystemMode::NoSwitch => baseline = Some(stats.throughput()),
                SystemMode::P4db => {
                    if let Some(base) = baseline {
                        if base > 0.0 {
                            println!("    speedup over No-Switch: {:.2}x", stats.throughput() / base);
                        }
                    }
                    let sw = cluster.switch_stats();
                    println!(
                        "    switch sub-transactions: {} ({:.0}% single-pass, {} multicast decisions)",
                        sw.txns_executed,
                        sw.single_pass_fraction() * 100.0,
                        sw.multicasts
                    );
                }
                _ => {}
            }
        }
        println!();
    }
}
