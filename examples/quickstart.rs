//! Quickstart: build a 4-node P4DB cluster with a simulated programmable
//! switch, run YCSB-A with and without in-switch transaction processing, and
//! print the resulting throughput and speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use p4db::common::{CcScheme, SystemMode};
use p4db::core::Cluster;
use p4db::workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: 20_000, ..YcsbConfig::new(YcsbMix::A) }));
    let measure = Duration::from_millis(500);

    println!("P4DB quickstart — YCSB-A, 4 nodes x 4 workers, 20% distributed transactions\n");

    let mut results = Vec::new();
    for mode in [SystemMode::NoSwitch, SystemMode::LmSwitch, SystemMode::P4db] {
        let cluster =
            Cluster::builder(Arc::clone(&workload)).nodes(4).workers(4).mode(mode).cc(CcScheme::NoWait).build();
        println!(
            "[{}] built: {} hot tuples, {} offloaded to the switch",
            mode.label(),
            cluster.hot_set_size(),
            cluster.offloaded_tuples()
        );
        let stats = cluster.run_for(measure);
        println!(
            "[{}] throughput = {:.0} txn/s, abort rate = {:.1}%, hot share = {:.0}%, mean latency = {:.0}µs",
            mode.label(),
            stats.throughput(),
            stats.abort_rate() * 100.0,
            stats.hot_fraction() * 100.0,
            stats.mean_latency().as_secs_f64() * 1e6
        );
        if mode == SystemMode::P4db {
            let sw = cluster.switch_stats();
            println!(
                "[{}] switch executed {} transactions ({:.0}% single-pass)",
                mode.label(),
                sw.txns_executed,
                sw.single_pass_fraction() * 100.0
            );
        }
        assert!(
            stats.merged.committed_total() > 100,
            "{} committed only {} transactions in {measure:?} — the cluster is not making progress",
            mode.label(),
            stats.merged.committed_total()
        );
        results.push((mode, stats));
        println!();
    }

    let baseline = results.iter().find(|(m, _)| *m == SystemMode::NoSwitch).unwrap().1.throughput();
    for (mode, stats) in &results {
        if *mode != SystemMode::NoSwitch && baseline > 0.0 {
            println!("{} speedup over No-Switch: {:.2}x", mode.label(), stats.throughput() / baseline);
        }
    }
}
