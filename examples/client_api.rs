//! Using P4DB as a database, not a benchmark: ad-hoc transactions through
//! the session API.
//!
//! Builds a 4-node P4DB cluster, opens one client session per node, and
//! submits typed transactions built with `Txn` — no workload generator
//! involved. Demonstrates the three execution classes (a hot transaction
//! executed entirely on the switch, a distributed cold transaction under
//! 2PL/2PC, and a warm mix), plus the open-loop path where one session keeps
//! many transactions in flight without owning a worker thread.
//!
//! Run with: `cargo run --release --example client_api`

use p4db::common::rand_util::FastRng;
use p4db::common::stats::TxnClass;
use p4db::common::LatencyConfig;
use p4db::workloads::ycsb::YCSB_TABLE;
use p4db::workloads::{Workload, Ycsb, YcsbConfig, YcsbMix};
use p4db::{CcScheme, Cluster, NodeId, SystemMode, TupleId, Txn};
use std::sync::Arc;

const KEYS_PER_NODE: u64 = 10_000;
const HOT_KEYS_PER_NODE: u64 = 50;

fn t(key: u64) -> TupleId {
    TupleId::new(YCSB_TABLE, key)
}

/// Global key of `local` key on `node` (the YCSB partitioning scheme).
fn key(node: u16, local: u64) -> u64 {
    node as u64 * KEYS_PER_NODE + local
}

fn main() {
    // The YCSB *schema and data* are reused, but every transaction below is
    // constructed by hand — the generator never runs.
    let workload: Arc<dyn Workload> =
        Arc::new(Ycsb::new(YcsbConfig { keys_per_node: KEYS_PER_NODE, ..YcsbConfig::new(YcsbMix::A) }));
    let cluster = Cluster::builder(Arc::clone(&workload))
        .nodes(4)
        .workers(4)
        .mode(SystemMode::P4db)
        .cc(CcScheme::NoWait)
        .latency(LatencyConfig::zero())
        .build();
    println!(
        "cluster up: {} nodes, {} hot tuples offloaded to the switch",
        cluster.config().num_nodes,
        cluster.offloaded_tuples()
    );

    let mut session = cluster.session(NodeId(0)).expect("node 0 exists");

    // --- A hot transaction: both tuples live on the switch -----------------
    let hot = session.execute(&Txn::new().add(t(key(0, 1)), 40).add(t(key(1, 2)), 2)).expect("hot transaction commits");
    assert_eq!(hot.class, TxnClass::Hot, "an all-hot transaction must execute on the switch");
    assert!(hot.gid.is_some(), "switch transactions carry a globally ordered GID");
    assert_eq!(hot.results, vec![40, 2]);
    println!("hot txn executed on the switch as {} -> results {:?}", hot.gid.unwrap(), hot.results);

    // --- A distributed cold transaction: one cold tuple per node -----------
    let transfer = Txn::new()
        .cond_sub(t(key(0, 5_000)), 0) // overdraft-checked debit (value starts at 0)
        .add(t(key(1, 5_000)), 10)
        .add(t(key(2, 5_000)), 20)
        .add(t(key(3, 5_000)), 30);
    let placed = transfer.resolve(&cluster.partition_map(), session.node()).expect("placement resolves");
    assert_eq!(placed.participant_nodes().len(), 4, "the partition map spreads the ops over all nodes");
    assert!(placed.is_distributed(session.node()));
    let cold = session.execute(&transfer).expect("distributed transaction commits");
    assert_eq!(cold.class, TxnClass::Cold, "no hot tuples -> host path with 2PC");
    assert_eq!(cold.results, vec![0, 10, 20, 30]);
    println!(
        "distributed txn committed across {} nodes -> results {:?}",
        placed.participant_nodes().len(),
        cold.results
    );

    // --- A warm transaction: switch counter + host rows --------------------
    let warm = session
        .execute(&Txn::new().fetch_add(t(key(0, 3)), 1).add(t(key(2, 6_000)), 7))
        .expect("warm transaction commits");
    assert_eq!(warm.class, TxnClass::Warm, "mixing hot and cold tuples yields a warm transaction");
    println!("warm txn stitched switch + host paths, gid {}", warm.gid.unwrap());

    // --- Closed-loop ad-hoc traffic from every node ------------------------
    let mut committed = 3u64;
    let mut rng = FastRng::new(0x5E55_1011);
    for node in 0..4u16 {
        let mut s = cluster.session(NodeId(node)).expect("node exists");
        for i in 0..30 {
            let hot_local = rng.gen_range(HOT_KEYS_PER_NODE);
            let cold_local = HOT_KEYS_PER_NODE + rng.gen_range(KEYS_PER_NODE - HOT_KEYS_PER_NODE);
            let remote = (node + 1 + (i % 3)) % 4;
            let txn = Txn::new()
                .add(t(key(node, hot_local)), 1)
                .read(t(key(remote, cold_local)))
                .write(t(key(node, cold_local)), i as u64);
            s.execute(&txn).expect("ad-hoc transaction commits");
        }
        committed += s.stats().committed_total();
    }

    // --- Open loop: 64 transactions in flight from one session -------------
    let mut open = cluster.session(NodeId(2)).expect("node 2 exists");
    let tickets: Vec<_> = (0..64)
        .map(|i| open.submit(&Txn::new().add(t(key(2, 7_000 + i)), i as i64 + 1)).expect("submission accepted"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = open.wait(ticket).expect("open-loop transaction commits");
        assert_eq!(outcome.results[0], i as u64 + 1);
    }
    committed += open.stats().committed_total();
    println!("open-loop burst: 64 transactions completed through {} executors", cluster.config().workers_per_node);

    let sw = cluster.switch_stats();
    assert!(committed >= 100, "expected at least 100 ad-hoc commits, got {committed}");
    assert!(sw.txns_executed > 0, "the switch must have executed hot sub-transactions");
    println!(
        "committed {committed} ad-hoc transactions; switch executed {} ({:.0}% single-pass)",
        sw.txns_executed,
        sw.single_pass_fraction() * 100.0
    );
}
